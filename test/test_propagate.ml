(* Tests for the activity-propagation kernel shared by presolve and the
   per-node deductions of branch and bound: single-row deduction steps,
   conflict/empty-domain detection, seeded incremental runs, local (cut
   pool) rows, and the property that a propagate-enabled solve preserves
   both the optimum and solution feasibility on random binary models. *)

module Lp = Ilp.Lp
module Pr = Ilp.Propagate
module Bb = Ilp.Branch_bound

let check_float = Alcotest.(check (float 1e-9))

let binary_bounds lp =
  let n = Lp.num_vars lp in
  ( Array.init n (fun j -> Lp.var_lb lp (Lp.var_of_int lp j)),
    Array.init n (fun j -> Lp.var_ub lp (Lp.var_of_int lp j)) )

let test_activity () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (2., x); (-3., y) ] Lp.Le 1.);
  let prop = Pr.of_lp lp in
  let lb, ub = binary_bounds lp in
  let lo, hi = Pr.activity (Pr.row prop 0) ~lb ~ub in
  check_float "min activity" (-3.) lo;
  check_float "max activity" 2. hi

let test_step_fixes_integer () =
  (* 2x + 3y <= 4 with x fixed at 1 forces y <= 2/3, i.e. y = 0. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (2., x); (3., y) ] Lp.Le 4.);
  let prop = Pr.of_lp lp in
  let lb, ub = binary_bounds lp in
  lb.((x : Lp.var :> int)) <- 1.;
  let moved = ref [] in
  Pr.step prop 0 ~lb ~ub ~on_change:(fun j -> moved := j :: !moved);
  Alcotest.(check (list int)) "y moved" [ (y : Lp.var :> int) ] !moved;
  check_float "y ub" 0. ub.((y : Lp.var :> int))

let test_conflict () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp ~name:"cap" [ (1., x); (1., y) ] Lp.Ge 3.);
  let prop = Pr.of_lp lp in
  let lb, ub = binary_bounds lp in
  (match Pr.run prop ~lb ~ub () with
   | Pr.Conflict name -> Alcotest.(check string) "witness row" "cap" name
   | Pr.Ok _ | Pr.Empty_domain _ -> Alcotest.fail "expected conflict")

let test_empty_domain () =
  (* x >= 1 and x <= 0 close x's domain. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (1., x); (0.5, y) ] Lp.Ge 1.4);
  ignore (Lp.add_constr lp [ (1., x); (-0.5, y) ] Lp.Le 0.1);
  let prop = Pr.of_lp lp in
  let lb, ub = binary_bounds lp in
  match Pr.run prop ~lb ~ub () with
  | Pr.Empty_domain _ | Pr.Conflict _ -> ()
  | Pr.Ok _ -> Alcotest.fail "expected an infeasibility proof"

let test_seeded_cascade () =
  (* chain: x + y >= 1, y + z <= 1. Fixing x = 0 seeds row 0, which
     fixes y = 1, which cascades into row 1 and fixes z = 0. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  let z = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Ge 1.);
  ignore (Lp.add_constr lp [ (1., y); (1., z) ] Lp.Le 1.);
  let prop = Pr.of_lp lp in
  let lb, ub = binary_bounds lp in
  ub.((x : Lp.var :> int)) <- 0.;
  match Pr.run prop ~lb ~ub ~seeds:[ (x : Lp.var :> int) ] () with
  | Pr.Ok d ->
    check_float "y fixed at 1" 1. lb.((y : Lp.var :> int));
    check_float "z fixed at 0" 0. ub.((z : Lp.var :> int));
    Alcotest.(check int) "two deduced fixes" 2 (List.length d.Pr.fixes)
  | Pr.Empty_domain _ | Pr.Conflict _ -> Alcotest.fail "unexpected infeasible"

let test_local_row_hits () =
  (* a pool cut attached as an extra local row produces a deduction
     counted in [local_hits]. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 2.);
  let cut =
    Pr.make_row ~local:true ~name:"clique_c1"
      [ (1., (x : Lp.var :> int)); (1., (y : Lp.var :> int)) ]
      Lp.Le 1.
  in
  let prop = Pr.of_lp ~extra:[ cut ] lp in
  let lb, ub = binary_bounds lp in
  lb.((x : Lp.var :> int)) <- 1.;
  match Pr.run prop ~lb ~ub ~seeds:[ (x : Lp.var :> int) ] () with
  | Pr.Ok d ->
    check_float "y forced off by the cut" 0. ub.((y : Lp.var :> int));
    Alcotest.(check bool) "local hit counted" true (d.Pr.local_hits >= 1)
  | Pr.Empty_domain _ | Pr.Conflict _ -> Alcotest.fail "unexpected infeasible"

(* Same random-model family as test_presolve.ml: presolve, propagation
   and the cut machinery are all audited against one generator. *)
let make_rand_binary seed ~n ~m =
  let rng = Taskgraph.Prng.create seed in
  let lp = Lp.create () in
  let vars = Array.init n (fun _ -> Lp.add_var lp Lp.Binary) in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.6 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng (-3) 4), v)
             else None)
    in
    if terms <> [] then begin
      let rhs = Float.of_int (Taskgraph.Prng.int_in rng 0 6) in
      let sense = if Taskgraph.Prng.bool rng 0.8 then Lp.Le else Lp.Ge in
      ignore (Lp.add_constr lp terms sense rhs)
    end
  done;
  Lp.set_objective lp ~maximize:true
    (Array.to_list vars
    |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng (-5) 5), v)));
  lp

let objective_value lp x =
  let obj = Lp.objective lp in
  let acc = ref 0. in
  Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) obj;
  Lp.obj_sign lp *. !acc

(* The deduction-stack counterpart of presolve's preservation property:
   solving with a deduction option on must reach the same optimum as the
   paper-faithful default, and its solution vector must be feasible for
   the ORIGINAL model with the same per-variable objective value
   (optima need not be unique, so vectors are compared through the
   model, not bitwise). *)
let prop_solve_preserved ~name opts =
  QCheck.Test.make ~name ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lp = make_rand_binary seed ~n:10 ~m:8 in
      let base = Bb.solve lp in
      let dedu = Bb.solve ~options:opts lp in
      match (base, dedu) with
      | (Bb.Optimal { obj = a; x = xa }, _), (Bb.Optimal { obj = b; x = xb }, _)
        ->
        Float.abs (a -. b) <= 1e-6
        && Ilp.Feas_check.is_feasible lp xa
        && Ilp.Feas_check.is_feasible lp xb
        && Float.abs (objective_value lp xa -. objective_value lp xb) <= 1e-6
      | (Bb.Infeasible, _), (Bb.Infeasible, _) -> true
      | _ -> false)

let prop_propagate_preserves_optimum =
  prop_solve_preserved ~name:"propagation preserves the MILP optimum"
    { Bb.default_options with Bb.propagate = true }

let prop_rc_fixing_preserves_optimum =
  prop_solve_preserved ~name:"reduced-cost fixing preserves the MILP optimum"
    { Bb.default_options with Bb.rc_fixing = true }

let prop_full_stack_preserves_optimum =
  prop_solve_preserved ~name:"full deduction stack preserves the MILP optimum"
    {
      Bb.default_options with
      Bb.rc_fixing = true;
      propagate = true;
      cuts = true;
      pseudocost = true;
    }

let prop_propagation_never_cuts_feasible_points =
  QCheck.Test.make ~name:"root propagation keeps every feasible binary point"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 6 in
      let lp = make_rand_binary seed ~n ~m:5 in
      let prop = Pr.of_lp lp in
      let lb, ub = binary_bounds lp in
      match Pr.run prop ~lb ~ub () with
      | Pr.Conflict _ | Pr.Empty_domain _ ->
        (* then no binary point may be feasible *)
        let any = ref false in
        for code = 0 to (1 lsl n) - 1 do
          let x = Array.init n (fun j -> Float.of_int ((code lsr j) land 1)) in
          if Ilp.Feas_check.is_feasible lp x then any := true
        done;
        not !any
      | Pr.Ok _ ->
        (* every feasible point must survive inside the tightened box *)
        let ok = ref true in
        for code = 0 to (1 lsl n) - 1 do
          let x = Array.init n (fun j -> Float.of_int ((code lsr j) land 1)) in
          if Ilp.Feas_check.is_feasible lp x then
            Array.iteri
              (fun j v ->
                if v < lb.(j) -. 1e-9 || v > ub.(j) +. 1e-9 then ok := false)
              x
        done;
        !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "propagate"
    [
      ( "unit",
        [
          Alcotest.test_case "activity" `Quick test_activity;
          Alcotest.test_case "integer step" `Quick test_step_fixes_integer;
          Alcotest.test_case "conflict" `Quick test_conflict;
          Alcotest.test_case "empty domain" `Quick test_empty_domain;
          Alcotest.test_case "seeded cascade" `Quick test_seeded_cascade;
          Alcotest.test_case "local rows" `Quick test_local_row_hits;
        ] );
      ( "properties",
        [
          qt prop_propagate_preserves_optimum;
          qt prop_rc_fixing_preserves_optimum;
          qt prop_full_stack_preserves_optimum;
          qt prop_propagation_never_cuts_feasible_points;
        ] );
    ]
