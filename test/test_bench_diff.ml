(* Tests for the bench-report comparator: section/row discovery on
   hand-built JSON reports, threshold-driven regression/improvement
   flagging (times vs counts vs speedups), solved/result status
   transitions, tolerance to missing rows, and the schema-mismatch
   error paths behind exit code 2. *)

module D = Temporal.Bench_diff
module J = Ilp.Json

let parse s =
  match J.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "test JSON invalid: %s" e

let diff ?time_threshold ?count_threshold a b =
  match D.diff ?time_threshold ?count_threshold (parse a) (parse b) with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected schema mismatch: %s" e

let base =
  {|{"host": {"cores": 8, "ocaml": "5.1"},
     "root_geomean_speedup": 2.0,
     "lp": [
       {"graph": 1, "n": 3, "l": 1, "solve_s": 1.0, "pivots": 100,
        "solved": true, "result": "optimal", "fill": 500},
       {"graph": 2, "n": 4, "l": 1, "solve_s": 10.0, "pivots": 2000,
        "solved": true, "result": "optimal", "fill": 900}
     ]}|}

let with_changes ~solve0 ~pivots1 ~fill1 ~speedup =
  Printf.sprintf
    {|{"host": {"cores": 8, "ocaml": "5.1"},
       "root_geomean_speedup": %g,
       "lp": [
         {"graph": 1, "n": 3, "l": 1, "solve_s": %g, "pivots": 100,
          "solved": true, "result": "optimal", "fill": 500},
         {"graph": 2, "n": 4, "l": 1, "solve_s": 10.0, "pivots": %d,
          "solved": true, "result": "optimal", "fill": %d}
       ]}|}
    speedup solve0 pivots1 fill1

let count_sev r sev =
  List.length (List.filter (fun (c : D.cell) -> c.D.c_severity = sev) r.D.r_cells)

let test_identical_clean () =
  let r = diff base base in
  Alcotest.(check (list string)) "sections" [ "lp"; "(top-level)" ]
    r.D.r_sections;
  Alcotest.(check int) "no regressions" 0 r.D.r_regressions;
  Alcotest.(check int) "no improvements" 0 r.D.r_improvements;
  Alcotest.(check (list reject)) "no changed cells" [] r.D.r_cells;
  Alcotest.(check bool) "cells compared" true (r.D.r_compared > 0)

let test_time_regression_flagged () =
  (* 3x slowdown on a 1 s cell: over the default 1.5x threshold *)
  let r =
    diff base (with_changes ~solve0:3.0 ~pivots1:2000 ~fill1:900 ~speedup:2.0)
  in
  Alcotest.(check int) "one regression" 1 r.D.r_regressions;
  let c = List.find (fun (c : D.cell) -> c.D.c_severity = D.Regression) r.D.r_cells in
  Alcotest.(check string) "field" "solve_s" c.D.c_field;
  Alcotest.(check string) "section" "lp" c.D.c_section;
  Alcotest.(check bool) "time-like" true c.D.c_time;
  Alcotest.(check (float 1e-9)) "ratio" 3.0 c.D.c_ratio

let test_time_improvement_flagged () =
  let r =
    diff base (with_changes ~solve0:0.4 ~pivots1:2000 ~fill1:900 ~speedup:2.0)
  in
  Alcotest.(check int) "no regressions" 0 r.D.r_regressions;
  Alcotest.(check int) "one improvement" 1 r.D.r_improvements

let test_within_noise_not_flagged () =
  (* 1.2x slowdown stays inside the default 1.5x band *)
  let r =
    diff base (with_changes ~solve0:1.2 ~pivots1:2000 ~fill1:900 ~speedup:2.0)
  in
  Alcotest.(check int) "no regressions" 0 r.D.r_regressions;
  Alcotest.(check int) "recorded as noise" 1 (count_sev r D.Within_noise);
  (* a tighter threshold flags the same delta *)
  let r = diff ~time_threshold:1.1 base
      (with_changes ~solve0:1.2 ~pivots1:2000 ~fill1:900 ~speedup:2.0)
  in
  Alcotest.(check int) "tighter threshold flags it" 1 r.D.r_regressions

let test_count_and_speedup_direction () =
  (* pivots 2000 -> 2500 (1.25x > 1.1 default): effort regression;
     speedup 2.0 -> 1.0: higher-is-better regression;
     fill 900 -> 5000: informational, never flagged *)
  let r =
    diff base (with_changes ~solve0:1.0 ~pivots1:2500 ~fill1:5000 ~speedup:1.0)
  in
  Alcotest.(check int) "two regressions" 2 r.D.r_regressions;
  let fields =
    List.filter_map
      (fun (c : D.cell) ->
        if c.D.c_severity = D.Regression then Some c.D.c_field else None)
      r.D.r_cells
  in
  Alcotest.(check bool) "pivots flagged" true (List.mem "pivots" fields);
  Alcotest.(check bool) "speedup flagged" true
    (List.mem "root_geomean_speedup" fields);
  Alcotest.(check bool) "fill informational" true
    (not (List.mem "fill" fields));
  (* speedup going up is an improvement, not a regression *)
  let r =
    diff base (with_changes ~solve0:1.0 ~pivots1:2000 ~fill1:900 ~speedup:4.0)
  in
  Alcotest.(check int) "no regressions" 0 r.D.r_regressions;
  Alcotest.(check int) "one improvement" 1 r.D.r_improvements

let test_solved_transition () =
  let broken =
    {|{"lp": [
        {"graph": 1, "n": 3, "l": 1, "solve_s": 1.0, "pivots": 100,
         "solved": false, "result": "timeout", "fill": 500},
        {"graph": 2, "n": 4, "l": 1, "solve_s": 10.0, "pivots": 2000,
         "solved": true, "result": "optimal", "fill": 900}
      ]}|}
  in
  let r = diff base broken in
  (* solved true->false and result "optimal"->"timeout" both regress *)
  Alcotest.(check int) "two status regressions" 2 r.D.r_regressions;
  Alcotest.(check int) "described" 2 (List.length r.D.r_status_changes);
  (* --ignore drops both fields from the comparison entirely (the CI
     quick-vs-committed diff runs under different time budgets) *)
  (match D.diff ~ignore:[ "solved"; "result" ] (parse base) (parse broken) with
  | Error e -> Alcotest.failf "ignore broke the diff: %s" e
  | Ok r ->
    Alcotest.(check int) "ignored fields don't regress" 0 r.D.r_regressions;
    Alcotest.(check int) "no status changes" 0
      (List.length r.D.r_status_changes));
  (* and the reverse direction is an improvement, not a regression *)
  let r = diff broken base in
  Alcotest.(check int) "false->true not a regression" 1 r.D.r_regressions
  (* result string changing back still counts as a change to review *)

let test_missing_rows_tolerated () =
  let shrunk =
    {|{"lp": [
        {"graph": 1, "n": 3, "l": 1, "solve_s": 1.0, "pivots": 100,
         "solved": true, "result": "optimal", "fill": 500}
      ]}|}
  in
  let r = diff base shrunk in
  Alcotest.(check int) "no regressions" 0 r.D.r_regressions;
  Alcotest.(check int) "one missing row" 1 (List.length r.D.r_missing_rows);
  let section, row = List.hd r.D.r_missing_rows in
  Alcotest.(check string) "section" "lp" section;
  Alcotest.(check string) "row key" "graph=2 n=4 l=1" row;
  let r = diff shrunk base in
  Alcotest.(check int) "new row on the other side" 1
    (List.length r.D.r_new_rows)

let test_schema_mismatch () =
  let alien = {|{"totally": "different", "payload": [1, 2, 3]}|} in
  (match D.diff (parse base) (parse alien) with
   | Ok _ -> Alcotest.fail "disjoint schemas accepted"
   | Error _ -> ());
  (match D.diff (parse "[1, 2]") (parse base) with
   | Ok _ -> Alcotest.fail "non-object accepted"
   | Error e ->
     Alcotest.(check bool) "names the side" true
       (String.length e > 0 && String.sub e 0 3 = "OLD"));
  (* same section name but rows that never align is a mismatch too *)
  let other_rows =
    {|{"lp": [{"graph": 9, "n": 9, "l": 9, "solve_s": 1.0}]}|}
  in
  match D.diff (parse other_rows) (parse base) with
  | Ok _ -> Alcotest.fail "non-overlapping rows accepted"
  | Error _ -> ()

let test_scalar_section () =
  (* dict-shaped sections (BENCH_trace.json's "trace") compare
     field-wise as a single row *)
  let a = {|{"trace": {"events": 100, "overhead_ns": 12.5}}|} in
  let b = {|{"trace": {"events": 100, "overhead_ns": 50.0}}|} in
  let r = diff a b in
  Alcotest.(check (list string)) "section found" [ "trace" ] r.D.r_sections;
  Alcotest.(check int) "informational only" 0 r.D.r_regressions;
  Alcotest.(check int) "change recorded" 1 (List.length r.D.r_cells)

let test_committed_benches_self_compare () =
  (* every committed artifact must diff cleanly against itself — this
     is what keeps the CI step meaningful *)
  (* tests run from _build/default/test; the artifacts live in the
     source root (three levels up through _build), falling back to a
     skip when the checkout has not generated them *)
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "BENCH_lp.json"))
      [ "../../.."; "../.."; "." ]
  in
  List.iter
    (fun name ->
      let path =
        match root with
        | Some d -> Filename.concat d name
        | None -> name
      in
      if Sys.file_exists path then
        match D.load_file path with
        | Error e -> Alcotest.failf "%s: %s" name e
        | Ok j -> (
          match D.diff j j with
          | Error e -> Alcotest.failf "%s does not self-compare: %s" name e
          | Ok r ->
            Alcotest.(check int)
              (name ^ " self-diff clean") 0 r.D.r_regressions))
    [
      "BENCH_lp.json"; "BENCH_parallel.json"; "BENCH_nodes.json";
      "BENCH_trace.json"; "BENCH_certify.json"; "BENCH_metrics.json";
    ]

let () =
  Alcotest.run "bench_diff"
    [
      ( "diff",
        [
          Alcotest.test_case "identical reports are clean" `Quick
            test_identical_clean;
          Alcotest.test_case "time regression flagged" `Quick
            test_time_regression_flagged;
          Alcotest.test_case "time improvement flagged" `Quick
            test_time_improvement_flagged;
          Alcotest.test_case "noise band respected" `Quick
            test_within_noise_not_flagged;
          Alcotest.test_case "count and speedup directions" `Quick
            test_count_and_speedup_direction;
          Alcotest.test_case "solved/result transitions" `Quick
            test_solved_transition;
          Alcotest.test_case "missing rows tolerated" `Quick
            test_missing_rows_tolerated;
          Alcotest.test_case "schema mismatch rejected" `Quick
            test_schema_mismatch;
          Alcotest.test_case "scalar sections compare" `Quick
            test_scalar_section;
          Alcotest.test_case "committed benches self-compare" `Quick
            test_committed_benches_self_compare;
        ] );
    ]
