(* Tests for the bounded-variable simplex: hand-checked LPs, degenerate
   and pathological cases, and randomized properties (feasibility of the
   reported optimum, optimality versus sampled feasible points, and
   warm-start/fresh-solve agreement). *)

module Lp = Ilp.Lp
module Sx = Ilp.Simplex

let check_float = Alcotest.(check (float 1e-6))

let solve_status lp =
  let r = Sx.solve lp in
  r.Sx.status

let user_obj lp (r : Sx.result) = Lp.obj_sign lp *. r.Sx.obj

(* -------- hand-checked LPs -------- *)

let test_basic_max () =
  (* max 3x + 2y st x + y <= 4; x + 3y <= 6 -> (4, 0), obj 12 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  let y = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 4.);
  ignore (Lp.add_constr lp [ (1., x); (3., y) ] Lp.Le 6.);
  Lp.set_objective lp ~maximize:true [ (3., x); (2., y) ];
  let r = Sx.solve lp in
  Alcotest.(check bool) "optimal" true (r.Sx.status = Sx.Optimal);
  check_float "obj" 12. (user_obj lp r);
  check_float "x" 4. r.Sx.x.((x :> int));
  check_float "y" 0. r.Sx.x.((y :> int))

let test_phase1_eq_ge () =
  (* min x + y st x + y >= 3; x - y = 1; x <= 2 -> (2, 1), obj 3 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:2. Lp.Continuous in
  let y = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Ge 3.);
  ignore (Lp.add_constr lp [ (1., x); (-1., y) ] Lp.Eq 1.);
  Lp.set_objective lp [ (1., x); (1., y) ];
  let r = Sx.solve lp in
  Alcotest.(check bool) "optimal" true (r.Sx.status = Sx.Optimal);
  check_float "obj" 3. r.Sx.obj;
  check_float "x" 2. r.Sx.x.((x :> int));
  check_float "y" 1. r.Sx.x.((y :> int))

let test_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Le 1.);
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Ge 2.);
  Alcotest.(check bool) "infeasible" true (solve_status lp = Sx.Infeasible)

let test_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Ge 0.);
  Lp.set_objective lp ~maximize:true [ (1., x) ];
  Alcotest.(check bool) "unbounded" true (solve_status lp = Sx.Unbounded)

let test_bounded_by_var_bounds_only () =
  (* no constraints at all: optimum at the bound *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:(-3.) ~ub:7. Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Le 100.);
  Lp.set_objective lp ~maximize:true [ (1., x) ];
  let r = Sx.solve lp in
  check_float "at upper bound" 7. r.Sx.x.((x :> int))

let test_negative_lower_bounds () =
  (* min x + y with x >= -5, y >= -5, x + y >= -6 -> obj -6 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:(-5.) Lp.Continuous in
  let y = Lp.add_var lp ~lb:(-5.) Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Ge (-6.));
  Lp.set_objective lp [ (1., x); (1., y) ];
  let r = Sx.solve lp in
  Alcotest.(check bool) "optimal" true (r.Sx.status = Sx.Optimal);
  check_float "obj" (-6.) r.Sx.obj

let test_free_variable () =
  (* free variable pinned by an equality *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:Float.neg_infinity ~ub:Float.infinity Lp.Continuous in
  let y = Lp.add_var lp ~ub:10. Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Eq 4.);
  Lp.set_objective lp [ (1., x) ];
  let r = Sx.solve lp in
  Alcotest.(check bool) "optimal" true (r.Sx.status = Sx.Optimal);
  (* min x -> y at its max 10, x = -6 *)
  check_float "obj" (-6.) r.Sx.obj

let test_degenerate () =
  (* multiple redundant constraints through one vertex *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  let y = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 1.);
  ignore (Lp.add_constr lp [ (2., x); (2., y) ] Lp.Le 2.);
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Le 1.);
  ignore (Lp.add_constr lp [ (1., y) ] Lp.Le 1.);
  Lp.set_objective lp ~maximize:true [ (1., x); (1., y) ];
  let r = Sx.solve lp in
  check_float "obj" 1. (user_obj lp r)

let test_equality_fixed_value () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:9. Lp.Continuous in
  ignore (Lp.add_constr lp [ (2., x) ] Lp.Eq 6.);
  Lp.set_objective lp ~maximize:true [ (1., x) ];
  let r = Sx.solve lp in
  check_float "x pinned" 3. r.Sx.x.((x :> int))

let test_zero_rows_model () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:2. Lp.Continuous in
  (* A model without constraints still needs at least dimension-0 row
     handling: add a vacuous row to exercise m >= 1, then none. *)
  Lp.set_objective lp ~maximize:true [ (1., x) ];
  let r = Sx.solve lp in
  check_float "no rows" 2. (user_obj lp r)

(* -------- randomized properties -------- *)

(* Random LP with a known feasible point: x0 random in [0, 5]^n; rows
   a.x <= a.x0 + slack with a >= 0. Box bounds keep it bounded. *)
type rand_lp = {
  lp : Lp.t;
  x0 : float array;
}

let make_rand_lp (seed : int) ~n ~m =
  let rng = Taskgraph.Prng.create seed in
  let lp = Lp.create () in
  let vars =
    Array.init n (fun _ -> Lp.add_var lp ~ub:5. Lp.Continuous)
  in
  let x0 = Array.init n (fun _ -> Taskgraph.Prng.float rng *. 5.) in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.5 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng 1 4), v)
             else None)
    in
    if terms <> [] then begin
      let act =
        List.fold_left
          (fun acc ((c : float), (v : Lp.var)) -> acc +. (c *. x0.((v :> int))))
          0. terms
      in
      let slack = Taskgraph.Prng.float rng *. 3. in
      ignore (Lp.add_constr lp terms Lp.Le (act +. slack))
    end
  done;
  let obj =
    Array.to_list vars
    |> List.map (fun v ->
           (Float.of_int (Taskgraph.Prng.int_in rng (-3) 3), v))
  in
  Lp.set_objective lp ~maximize:true obj;
  { lp; x0 }

let prop_feasible_and_dominates =
  QCheck.Test.make ~name:"simplex optimum feasible and >= sampled point"
    ~count:150 QCheck.(int_bound 100_000)
    (fun seed ->
      let { lp; x0 } = make_rand_lp seed ~n:6 ~m:8 in
      let r = Sx.solve lp in
      match r.Sx.status with
      | Sx.Optimal ->
        let feas = Ilp.Feas_check.is_feasible ~tol:1e-5 lp r.Sx.x in
        let dominates =
          user_obj lp r +. 1e-5 >= Ilp.Feas_check.objective_value lp x0
        in
        feas && dominates
      | Sx.Unbounded | Sx.Infeasible | Sx.Iter_limit ->
        (* by construction the model is feasible and bounded *)
        false)

let prop_warm_start_agrees =
  QCheck.Test.make
    ~name:"dual_reopt after bound changes agrees with fresh primal" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let { lp; _ } = make_rand_lp seed ~n:6 ~m:8 in
      let st = Sx.create lp in
      let r0 = Sx.primal st in
      if r0.Sx.status <> Sx.Optimal then false
      else begin
        let rng = Taskgraph.Prng.create (seed + 7) in
        let ok = ref true in
        for _round = 1 to 5 do
          (* randomly tighten or restore some variable bounds *)
          for j = 0 to 5 do
            if Taskgraph.Prng.bool rng 0.4 then begin
              let fix = Float.of_int (Taskgraph.Prng.int_in rng 0 3) in
              Sx.set_var_bounds st j ~lb:fix ~ub:fix
            end
            else Sx.set_var_bounds st j ~lb:0. ~ub:5.
          done;
          let warm = Sx.dual_reopt st in
          (* fresh state on the same bounds *)
          let lp2 = Lp.copy lp in
          for j = 0 to 5 do
            let lb, ub = Sx.get_var_bounds st j in
            Lp.set_bounds lp2 (Lp.var_of_int lp2 j) ~lb ~ub
          done;
          let fresh = Sx.solve lp2 in
          (match (warm.Sx.status, fresh.Sx.status) with
           | Sx.Optimal, Sx.Optimal ->
             if Float.abs (warm.Sx.obj -. fresh.Sx.obj) > 1e-5 then ok := false
           | Sx.Infeasible, Sx.Infeasible -> ()
           | _, _ -> ok := false)
        done;
        !ok
      end)

(* Mixed-sense random LPs: equalities and >= rows anchored at a known
   feasible point, plus occasional negative lower bounds. *)
let make_rand_mixed seed ~n ~m =
  let rng = Taskgraph.Prng.create seed in
  let lp = Lp.create () in
  let vars =
    Array.init n (fun _ ->
        if Taskgraph.Prng.bool rng 0.2 then
          Lp.add_var lp ~lb:(-3.) ~ub:4. Lp.Continuous
        else Lp.add_var lp ~ub:5. Lp.Continuous)
  in
  let x0 =
    Array.init n (fun j ->
        let v = Lp.var_of_int lp j in
        let lo = Lp.var_lb lp v and hi = Lp.var_ub lp v in
        lo +. (Taskgraph.Prng.float rng *. (hi -. lo)))
  in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.5 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng (-3) 4), v)
             else None)
    in
    if terms <> [] then begin
      let act =
        List.fold_left
          (fun acc ((c : float), (v : Lp.var)) -> acc +. (c *. x0.((v :> int))))
          0. terms
      in
      match Taskgraph.Prng.int rng 3 with
      | 0 -> ignore (Lp.add_constr lp terms Lp.Le (act +. (Taskgraph.Prng.float rng *. 3.)))
      | 1 -> ignore (Lp.add_constr lp terms Lp.Ge (act -. (Taskgraph.Prng.float rng *. 3.)))
      | _ -> ignore (Lp.add_constr lp terms Lp.Eq act)
    end
  done;
  let obj =
    Array.to_list vars
    |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng (-3) 3), v))
  in
  Lp.set_objective lp ~maximize:true obj;
  (lp, x0)

let prop_mixed_senses =
  QCheck.Test.make ~name:"mixed eq/ge/le rows with negative bounds" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, x0 = make_rand_mixed seed ~n:7 ~m:7 in
      let r = Sx.solve lp in
      match r.Sx.status with
      | Sx.Optimal ->
        Ilp.Feas_check.is_feasible ~tol:1e-5 lp r.Sx.x
        && user_obj lp r +. 1e-5 >= Ilp.Feas_check.objective_value lp x0
      | Sx.Unbounded | Sx.Infeasible | Sx.Iter_limit -> false)

(* The dense explicit-inverse backend and the sparse LU backend must be
   observationally identical: same status, same objective (to roundoff),
   and both residual-clean at an optimum. *)
let prop_dense_sparse_agree =
  QCheck.Test.make ~name:"dense and sparse backends agree" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, _ = make_rand_mixed seed ~n:8 ~m:9 in
      let rd = Sx.solve ~backend:Sx.Dense lp in
      let rs = Sx.solve ~backend:Sx.Sparse_lu lp in
      rd.Sx.status = rs.Sx.status
      &&
      match rd.Sx.status with
      | Sx.Optimal ->
        Float.abs (rd.Sx.obj -. rs.Sx.obj) <= 1e-9
        && rs.Sx.primal_res <= 1e-6
        && rs.Sx.dual_res <= 1e-6
        && rd.Sx.primal_res <= 1e-6
        && rd.Sx.dual_res <= 1e-6
      | Sx.Infeasible | Sx.Unbounded | Sx.Iter_limit -> true)

let prop_dense_sparse_warm_agree =
  QCheck.Test.make
    ~name:"dense and sparse warm starts agree through bound changes"
    ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let { lp; _ } = make_rand_lp seed ~n:7 ~m:9 in
      let std = Sx.create ~backend:Sx.Dense lp in
      let sts = Sx.create ~backend:Sx.Sparse_lu lp in
      ignore (Sx.primal std);
      ignore (Sx.primal sts);
      let rng = Taskgraph.Prng.create (seed + 13) in
      let ok = ref true in
      for _round = 1 to 5 do
        for j = 0 to 6 do
          if Taskgraph.Prng.bool rng 0.4 then begin
            let fix = Float.of_int (Taskgraph.Prng.int_in rng 0 3) in
            Sx.set_var_bounds std j ~lb:fix ~ub:fix;
            Sx.set_var_bounds sts j ~lb:fix ~ub:fix
          end
          else begin
            Sx.set_var_bounds std j ~lb:0. ~ub:5.;
            Sx.set_var_bounds sts j ~lb:0. ~ub:5.
          end
        done;
        let rd = Sx.dual_reopt std in
        let rs = Sx.dual_reopt sts in
        match (rd.Sx.status, rs.Sx.status) with
        | Sx.Optimal, Sx.Optimal ->
          if Float.abs (rd.Sx.obj -. rs.Sx.obj) > 1e-9 then ok := false
        | Sx.Infeasible, Sx.Infeasible -> ()
        | _, _ -> ok := false
      done;
      !ok)

let prop_lp_bound_below_milp =
  QCheck.Test.make ~name:"LP relaxation bounds the MILP optimum" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      (* binary knapsack-ish models *)
      let rng = Taskgraph.Prng.create seed in
      let lp = Lp.create () in
      let n = 7 in
      let vars = Array.init n (fun _ -> Lp.add_var lp Lp.Binary) in
      for _ = 1 to 4 do
        let terms =
          Array.to_list vars
          |> List.filter_map (fun v ->
                 if Taskgraph.Prng.bool rng 0.7 then
                   Some (Float.of_int (Taskgraph.Prng.int_in rng 1 5), v)
                 else None)
        in
        if terms <> [] then
          ignore
            (Lp.add_constr lp terms Lp.Le
               (Float.of_int (Taskgraph.Prng.int_in rng 3 12)))
      done;
      Lp.set_objective lp ~maximize:true
        (Array.to_list vars
        |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng 1 9), v)));
      let relax = Sx.solve lp in
      match (relax.Sx.status, Ilp.Branch_bound.solve lp) with
      | Sx.Optimal, (Ilp.Branch_bound.Optimal { obj; _ }, _) ->
        (* both minimization-oriented: relaxation is a lower bound *)
        relax.Sx.obj <= obj +. 1e-6
      | _ -> false)


(* ---------------- pricing rules and bound flips ---------------- *)

(* Hand-built 0-1 model where the dual bound-flipping ratio test
   provably flips: one equality row
     x1 + x2 + 0.5 x3 + x4 + y = 2
   with x1, x2, x3, x4 in [0,1], y in [0, 0.3], maximizing
   x1 + x2 - 0.6 x3 - 2 x4. The optimum is x1 = x2 = 1 with y basic at
   0. Fixing x1 at 0 pushes y to 1 > 0.3; the cheapest repair flips x3
   to its upper bound (ratio 1.2, reducing the excess by 0.5) and then
   pivots x4 in for the remaining 0.2 — one basis change, one flip. *)
let bfrt_model () =
  let lp = Lp.create () in
  let x1 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let x2 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let x3 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let x4 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let y = Lp.add_var lp ~ub:0.3 Lp.Continuous in
  ignore
    (Lp.add_constr lp
       [ (1., x1); (1., x2); (0.5, x3); (1., x4); (1., y) ]
       Lp.Eq 2.);
  Lp.set_objective lp ~maximize:true
    [ (1., x1); (1., x2); (-0.6, x3); (-2., x4) ];
  lp

let test_bfrt_flips_to_optimum () =
  let lp = bfrt_model () in
  let st = Sx.create lp in
  let r0 = Sx.primal st in
  Alcotest.(check bool) "cold optimal" true (r0.Sx.status = Sx.Optimal);
  check_float "cold obj" 2. (user_obj lp r0);
  let flips0 = Sx.bound_flips st in
  Sx.set_var_bounds st 0 ~lb:0. ~ub:0.;
  let warm = Sx.dual_reopt st in
  Alcotest.(check bool) "warm optimal" true (warm.Sx.status = Sx.Optimal);
  check_float "warm obj" 0. (user_obj lp warm);
  Alcotest.(check bool) "flip happened" true (Sx.bound_flips st > flips0);
  check_float "x3 flipped to upper" 1. warm.Sx.x.(2);
  (* the warm answer matches a fresh solve on the tightened model *)
  let lp2 = Lp.copy lp in
  Lp.set_bounds lp2 (Lp.var_of_int lp2 0) ~lb:0. ~ub:0.;
  let fresh = Sx.solve lp2 in
  check_float "fresh agrees" (user_obj lp2 fresh) (user_obj lp warm)

let test_entering_column_flip () =
  (* maximize x1 + x2 under x1 + x2 <= 5, x in [0,1]^2: both columns hit
     their opposite bound before any row blocks, so the ratio test
     reports flips and the basis never changes. *)
  let lp = Lp.create () in
  let x1 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let x2 = Lp.add_var lp ~ub:1. Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x1); (1., x2) ] Lp.Le 5.);
  Lp.set_objective lp ~maximize:true [ (1., x1); (1., x2) ];
  let st = Sx.create lp in
  let r = Sx.primal st in
  Alcotest.(check bool) "optimal" true (r.Sx.status = Sx.Optimal);
  check_float "obj" 2. (user_obj lp r);
  Alcotest.(check bool) "flips counted" true (Sx.bound_flips st >= 2);
  Alcotest.(check int) "no pivot needed" 0 (Sx.total_pivots st)

let test_bfrt_exhaustion_is_infeasible () =
  (* After fixing every nonbasic column, the violated row cannot be
     repaired: the dual ratio test runs dry and must report
     infeasibility with a usable Farkas certificate — without applying
     any of the flips it considered. *)
  let lp = Lp.create () in
  let x1 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let x2 = Lp.add_var lp ~ub:1. Lp.Continuous in
  let y = Lp.add_var lp ~ub:0.3 Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x1); (1., x2); (1., y) ] Lp.Eq 2.);
  Lp.set_objective lp ~maximize:true [ (1., x1); (1., x2) ];
  let st = Sx.create lp in
  let r0 = Sx.primal st in
  Alcotest.(check bool) "cold optimal" true (r0.Sx.status = Sx.Optimal);
  Sx.set_var_bounds st 0 ~lb:0. ~ub:0.;
  Sx.set_var_bounds st 1 ~lb:0.5 ~ub:0.5;
  let warm = Sx.dual_reopt st in
  Alcotest.(check bool) "infeasible" true (warm.Sx.status = Sx.Infeasible);
  Alcotest.(check bool) "farkas present" true (warm.Sx.farkas <> None)

(* Binary-box random LPs: every structural variable is 0-1, which makes
   the bound-flipping paths hot both cold and warm. *)
let make_rand_01 seed ~n ~m =
  let rng = Taskgraph.Prng.create (seed * 2 + 1) in
  let lp = Lp.create () in
  let vars = Array.init n (fun _ -> Lp.add_var lp ~ub:1. Lp.Continuous) in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.5 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng (-2) 4), v)
             else None)
    in
    if terms <> [] then begin
      let cap =
        List.fold_left
          (fun acc (c, _) -> acc +. Float.max 0. c)
          0. terms
      in
      ignore
        (Lp.add_constr lp terms Lp.Le (Taskgraph.Prng.float rng *. cap))
    end
  done;
  Lp.set_objective lp ~maximize:true
    (Array.to_list vars
    |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng (-3) 5), v)));
  lp

let prop_pricing_rules_agree =
  QCheck.Test.make ~name:"devex and partial pricing agree (both backends)"
    ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, _ = make_rand_mixed seed ~n:8 ~m:9 in
      let reference = Sx.solve ~pricing:Sx.Partial lp in
      List.for_all
        (fun (backend, pricing) ->
          let r = Sx.solve ~backend ~pricing lp in
          r.Sx.status = reference.Sx.status
          &&
          match r.Sx.status with
          | Sx.Optimal -> Float.abs (r.Sx.obj -. reference.Sx.obj) <= 1e-7
          | Sx.Infeasible | Sx.Unbounded | Sx.Iter_limit -> true)
        [ (Sx.Dense, Sx.Devex); (Sx.Sparse_lu, Sx.Devex);
          (Sx.Dense, Sx.Partial); (Sx.Sparse_lu, Sx.Partial) ])

let prop_devex_01_warm_parity =
  QCheck.Test.make
    ~name:"devex bound flips: dense/sparse/fresh agree on warm 0-1 models"
    ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp = make_rand_01 seed ~n:8 ~m:6 in
      let std = Sx.create ~backend:Sx.Dense lp in
      let sts = Sx.create ~backend:Sx.Sparse_lu lp in
      ignore (Sx.primal std);
      ignore (Sx.primal sts);
      let rng = Taskgraph.Prng.create (seed + 41) in
      let ok = ref true in
      for _round = 1 to 4 do
        for j = 0 to 7 do
          if Taskgraph.Prng.bool rng 0.35 then begin
            let fix = Float.of_int (Taskgraph.Prng.int rng 2) in
            Sx.set_var_bounds std j ~lb:fix ~ub:fix;
            Sx.set_var_bounds sts j ~lb:fix ~ub:fix
          end
          else begin
            Sx.set_var_bounds std j ~lb:0. ~ub:1.;
            Sx.set_var_bounds sts j ~lb:0. ~ub:1.
          end
        done;
        let rd = Sx.dual_reopt std in
        let rs = Sx.dual_reopt sts in
        (match (rd.Sx.status, rs.Sx.status) with
         | Sx.Optimal, Sx.Optimal ->
           if Float.abs (rd.Sx.obj -. rs.Sx.obj) > 1e-7 then ok := false;
           (* and both match a cold solve of the same box *)
           let lp2 = Lp.copy lp in
           for j = 0 to 7 do
             let lb, ub = Sx.get_var_bounds std j in
             Lp.set_bounds lp2 (Lp.var_of_int lp2 j) ~lb ~ub
           done;
           let fresh = Sx.solve lp2 in
           if
             fresh.Sx.status <> Sx.Optimal
             || Float.abs (fresh.Sx.obj -. rs.Sx.obj) > 1e-7
           then ok := false
         | Sx.Infeasible, Sx.Infeasible -> ()
         | _, _ -> ok := false)
      done;
      !ok)

(* -------- basis export / install (warm-start shipping) -------- *)

let prop_shipped_basis_reaches_optimum =
  (* The parallel search's shipping protocol: solve a parent LP on one
     engine, export its basis, install it into a DIFFERENT engine of
     the same model, tighten some bounds (the child's branching fixes)
     and dual-reoptimize. The result must match a cold solve of the
     child bounds — under both pricing rules. *)
  QCheck.Test.make
    ~name:"warm start from a shipped basis matches the cold optimum"
    ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      List.for_all
        (fun pricing ->
          let lp = make_rand_01 seed ~n:8 ~m:6 in
          let parent = Sx.create ~pricing lp in
          let r0 = Sx.primal parent in
          if r0.Sx.status <> Sx.Optimal then true (* covered elsewhere *)
          else begin
            let b = Sx.export_basis parent in
            let thief = Sx.create ~pricing lp in
            if not (Sx.install_basis thief b) then false
            else begin
              let rng = Taskgraph.Prng.create (seed + 13) in
              let lp2 = Lp.copy lp in
              for j = 0 to 7 do
                if Taskgraph.Prng.bool rng 0.4 then begin
                  let fix = Float.of_int (Taskgraph.Prng.int rng 2) in
                  Sx.set_var_bounds thief j ~lb:fix ~ub:fix;
                  Lp.set_bounds lp2 (Lp.var_of_int lp2 j) ~lb:fix ~ub:fix
                end
              done;
              let warm = Sx.dual_reopt thief in
              let cold = Sx.solve lp2 in
              match (warm.Sx.status, cold.Sx.status) with
              | Sx.Optimal, Sx.Optimal ->
                Float.abs (warm.Sx.obj -. cold.Sx.obj) <= 1e-7
              | Sx.Infeasible, Sx.Infeasible -> true
              | _, _ -> false
            end
          end)
        [ Sx.Devex; Sx.Partial ])

let test_basis_mismatch_falls_back () =
  (* A basis exported from a model of different dimensions must be
     rejected, and the refusing engine must still solve cleanly from
     its cold slack basis afterwards. *)
  let lp_big = make_rand_01 7 ~n:8 ~m:6 in
  let lp_small = make_rand_01 7 ~n:5 ~m:4 in
  let donor = Sx.create lp_big in
  ignore (Sx.primal donor);
  let b = Sx.export_basis donor in
  let eng = Sx.create lp_small in
  Alcotest.(check bool) "mismatched basis rejected" false
    (Sx.install_basis eng b);
  let r = Sx.primal eng in
  Alcotest.(check bool) "engine recovers with a cold solve" true
    (r.Sx.status = Sx.Optimal);
  let reference = Sx.solve lp_small in
  Alcotest.(check (float 1e-7)) "and reaches the true optimum"
    reference.Sx.obj r.Sx.obj

let test_stale_basis_reopt () =
  (* A basis exported BEFORE later pivots is stale but dimensionally
     valid: installing it must succeed and dual_reopt must still land
     on the optimum of the current bounds. *)
  let lp = make_rand_01 21 ~n:8 ~m:6 in
  let eng = Sx.create lp in
  let r0 = Sx.primal eng in
  Alcotest.(check bool) "base solve optimal" true (r0.Sx.status = Sx.Optimal);
  let stale = Sx.export_basis eng in
  (* walk the engine elsewhere: fix a few variables and re-optimize *)
  Sx.set_var_bounds eng 0 ~lb:1. ~ub:1.;
  Sx.set_var_bounds eng 3 ~lb:0. ~ub:0.;
  ignore (Sx.dual_reopt eng);
  (* now install the stale root basis and re-solve the CURRENT bounds *)
  Alcotest.(check bool) "stale basis installs" true
    (Sx.install_basis eng stale);
  let warm = Sx.dual_reopt eng in
  let lp2 = Lp.copy lp in
  Lp.set_bounds lp2 (Lp.var_of_int lp2 0) ~lb:1. ~ub:1.;
  Lp.set_bounds lp2 (Lp.var_of_int lp2 3) ~lb:0. ~ub:0.;
  let cold = Sx.solve lp2 in
  Alcotest.(check bool) "same status" true (warm.Sx.status = cold.Sx.status);
  if warm.Sx.status = Sx.Optimal then
    Alcotest.(check (float 1e-7)) "same objective" cold.Sx.obj warm.Sx.obj

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "simplex"
    [
      ( "hand-checked",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "phase1 eq/ge" `Quick test_phase1_eq_ge;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "var bounds only" `Quick
            test_bounded_by_var_bounds_only;
          Alcotest.test_case "negative lower bounds" `Quick
            test_negative_lower_bounds;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
          Alcotest.test_case "equality pins value" `Quick
            test_equality_fixed_value;
          Alcotest.test_case "bounds-only model" `Quick test_zero_rows_model;
        ] );
      ( "bound-flips",
        [
          Alcotest.test_case "dual BFRT flips to the optimum" `Quick
            test_bfrt_flips_to_optimum;
          Alcotest.test_case "entering column flips without pivot" `Quick
            test_entering_column_flip;
          Alcotest.test_case "BFRT exhaustion certifies infeasibility" `Quick
            test_bfrt_exhaustion_is_infeasible;
        ] );
      ( "basis-shipping",
        [
          Alcotest.test_case "mismatched basis falls back" `Quick
            test_basis_mismatch_falls_back;
          Alcotest.test_case "stale basis reopt" `Quick test_stale_basis_reopt;
        ] );
      ( "properties",
        [ qt prop_feasible_and_dominates; qt prop_warm_start_agrees;
          qt prop_mixed_senses; qt prop_dense_sparse_agree;
          qt prop_dense_sparse_warm_agree; qt prop_pricing_rules_agree;
          qt prop_devex_01_warm_parity; qt prop_lp_bound_below_milp;
          qt prop_shipped_basis_reaches_optimum ] );
    ]
