(* Tests for the MILP branch and bound: hand-checked knapsacks,
   exhaustive cross-checks on random small binary models, and the
   behavior of limits, orders and custom branch rules. *)

module Lp = Ilp.Lp
module Bb = Ilp.Branch_bound

let check_float = Alcotest.(check (float 1e-6))

let user_obj lp v = Lp.obj_sign lp *. v

let knapsack values weights cap =
  let lp = Lp.create () in
  let vars = Array.map (fun _ -> Lp.add_var lp Lp.Binary) values in
  ignore
    (Lp.add_constr lp
       (Array.to_list (Array.mapi (fun i v -> (weights.(i), v)) vars))
       Lp.Le cap);
  Lp.set_objective lp ~maximize:true
    (Array.to_list (Array.mapi (fun i v -> (values.(i), v)) vars));
  (lp, vars)

let test_knapsack () =
  let lp, _ = knapsack [| 10.; 6.; 4. |] [| 5.; 4.; 3. |] 8. in
  match Bb.solve lp with
  | Bb.Optimal { obj; x }, stats ->
    check_float "obj" 14. (user_obj lp obj);
    Alcotest.(check (array (float 1e-6))) "x" [| 1.; 0.; 1. |] x;
    Alcotest.(check bool) "nodes > 0" true (stats.Bb.nodes >= 1)
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_infeasible_milp () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  (* x + y = 1 and x + y >= 2: LP infeasible *)
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Eq 1.);
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Ge 2.);
  (match Bb.solve lp with
   | Bb.Infeasible, _ -> ()
   | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o)

let test_integrality_gap () =
  (* LP relaxation fractional: x + y <= 1.5 with max x + y -> MILP 1 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 1.5);
  Lp.set_objective lp ~maximize:true [ (1., x); (1., y) ];
  match Bb.solve lp with
  | Bb.Optimal { obj; _ }, stats ->
    check_float "obj" 1. (user_obj lp obj);
    Alcotest.(check bool) "branched" true (stats.Bb.nodes >= 2);
    check_float "root relaxation" (-1.5) stats.Bb.root_obj
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_general_integer () =
  (* max 2a + 3b, a <= 3.7, 2a + b <= 7, a,b general integer >= 0, b <= 4 *)
  let lp = Lp.create () in
  let a = Lp.add_var lp ~ub:3.7 Lp.Integer in
  let b = Lp.add_var lp ~ub:4. Lp.Integer in
  ignore (Lp.add_constr lp [ (2., a); (1., b) ] Lp.Le 7.);
  Lp.set_objective lp ~maximize:true [ (2., a); (3., b) ];
  match Bb.solve lp with
  | Bb.Optimal { obj; x }, _ ->
    (* b = 4 forced best: 2a + 4 <= 7 -> a = 1; obj = 14 *)
    check_float "obj" 14. (user_obj lp obj);
    check_float "a" 1. x.((a :> int));
    check_float "b" 4. x.((b :> int))
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_node_limit () =
  let lp, _ =
    knapsack
      (Array.init 12 (fun i -> Float.of_int (7 + (i mod 5))))
      (Array.init 12 (fun i -> Float.of_int (3 + (i mod 7))))
      17.
  in
  let options = { Bb.default_options with Bb.max_nodes = 1 } in
  match Bb.solve ~options lp with
  | Bb.Limit_reached _, stats ->
    Alcotest.(check bool) "few nodes" true (stats.Bb.nodes <= 1)
  | Bb.Optimal _, _ ->
    (* a 1-node optimum is possible only if the relaxation was integral;
       with these weights it is not *)
    Alcotest.fail "expected node limit"
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_value_orders_agree () =
  let lp, _ = knapsack [| 9.; 7.; 5.; 3. |] [| 4.; 3.; 2.; 1. |] 6. in
  let solve order =
    let options = { Bb.default_options with Bb.value_order = order } in
    match Bb.solve ~options lp with
    | Bb.Optimal { obj; _ }, _ -> user_obj lp obj
    | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o
  in
  check_float "one-first = zero-first" (solve Bb.One_first) (solve Bb.Zero_first)

let test_node_orders_agree () =
  let lp, _ = knapsack [| 9.; 7.; 5.; 3.; 8. |] [| 4.; 3.; 2.; 1.; 3. |] 7. in
  let solve order =
    let options = { Bb.default_options with Bb.node_order = order } in
    match Bb.solve ~options lp with
    | Bb.Optimal { obj; _ }, _ -> user_obj lp obj
    | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o
  in
  check_float "dfs = best-bound" (solve Bb.Depth_first) (solve Bb.Best_bound)

let test_custom_branch_rule () =
  (* a rule may pick an unfixed variable even when integral; once the
     variable is fixed at a node, the solver falls back gracefully *)
  let lp, vars = knapsack [| 10.; 6.; 4. |] [| 5.; 4.; 3. |] 8. in
  let bogus =
    Some
      (fun ~lp_solution:_ ~is_fixed:_ -> Some ((vars.(0) : Lp.var :> int)))
  in
  let options = { Bb.default_options with Bb.branch_rule = bogus } in
  match Bb.solve ~options lp with
  | Bb.Optimal { obj; _ }, _ -> check_float "obj" 14. (user_obj lp obj)
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_on_incumbent_callback () =
  let lp, _ = knapsack [| 10.; 6.; 4. |] [| 5.; 4.; 3. |] 8. in
  let calls = ref [] in
  let options =
    {
      Bb.default_options with
      Bb.on_incumbent = Some (fun obj _ -> calls := obj :: !calls);
    }
  in
  (match Bb.solve ~options lp with
   | Bb.Optimal { obj; _ }, _ ->
     Alcotest.(check bool) "called" true (!calls <> []);
     (* incumbents improve monotonically; the last equals the optimum *)
     check_float "last incumbent" obj (List.hd !calls);
     let rec monotone = function
       | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
       | _ -> true
     in
     Alcotest.(check bool) "monotone" true (monotone !calls)
   | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o)

let test_fractionality () =
  check_float "0.5" 0.5 (Bb.fractionality 0.5);
  check_float "2.25" 0.25 (Bb.fractionality 2.25);
  check_float "3.0" 0. (Bb.fractionality 3.);
  check_float "-1.75" 0.25 (Bb.fractionality (-1.75))

(* -------- exhaustive cross-check on random binary models -------- *)

let brute_force lp n =
  (* enumerate all 2^n binary points; return best user objective *)
  let best = ref None in
  for code = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> Float.of_int ((code lsr j) land 1)) in
    if Ilp.Feas_check.is_feasible lp x then begin
      let v = Ilp.Feas_check.objective_value lp x in
      match !best with
      | None -> best := Some v
      | Some b -> if v > b then best := Some v
    end
  done;
  !best

let make_rand_binary seed ~n ~m =
  let rng = Taskgraph.Prng.create seed in
  let lp = Lp.create () in
  let vars = Array.init n (fun _ -> Lp.add_var lp Lp.Binary) in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.6 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng (-3) 4), v)
             else None)
    in
    if terms <> [] then begin
      let rhs = Float.of_int (Taskgraph.Prng.int_in rng 0 6) in
      let sense = if Taskgraph.Prng.bool rng 0.8 then Lp.Le else Lp.Ge in
      ignore (Lp.add_constr lp terms sense rhs)
    end
  done;
  Lp.set_objective lp ~maximize:true
    (Array.to_list vars
    |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng (-5) 5), v)));
  lp

let prop_matches_brute_force =
  QCheck.Test.make ~name:"b&b equals exhaustive enumeration (n<=8)" ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 4 + (seed mod 5) in
      let lp = make_rand_binary seed ~n ~m:5 in
      let expect = brute_force lp n in
      match (Bb.solve lp, expect) with
      | (Bb.Optimal { obj; x }, _), Some b ->
        Float.abs (user_obj lp obj -. b) <= 1e-6
        && Ilp.Feas_check.is_feasible lp x
      | (Bb.Infeasible, _), None -> true
      | _, _ -> false)

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm-start b&b equals from-scratch b&b" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lp = make_rand_binary seed ~n:8 ~m:6 in
      let solve warm =
        let options = { Bb.default_options with Bb.warm_start = warm } in
        Bb.solve ~options lp
      in
      match (solve true, solve false) with
      | (Bb.Optimal { obj = a; _ }, _), (Bb.Optimal { obj = b; _ }, _) ->
        Float.abs (a -. b) <= 1e-6
      | (Bb.Infeasible, _), (Bb.Infeasible, _) -> true
      | _, _ -> false)

(* -------- historical default-config behavior -------- *)

(* The node-deduction options (rc_fixing / propagate / cuts /
   pseudocost) must be invisible when off: the default configuration has
   to reproduce the search tree of the pre-deduction solver node for
   node. These counts were recorded on that solver; a change here means
   the paper-faithful default drifted. *)
let test_default_node_counts_frozen () =
  List.iter
    (fun (seed, nodes, obj) ->
      let lp = make_rand_binary seed ~n:16 ~m:12 in
      match Bb.solve lp with
      | Bb.Optimal { obj = o; _ }, stats ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d node count" seed)
          nodes stats.Bb.nodes;
        check_float (Printf.sprintf "seed %d objective" seed) obj
          (user_obj lp o)
      | o, _ -> Alcotest.failf "seed %d: unexpected %a" seed Bb.pp_outcome o)
    [ (21, 69, 1.); (25, 47, 10.); (33, 41, 5.); (59, 69, 20.) ]

let test_default_deductions_idle () =
  (* with everything off, no deduction counter may move *)
  let lp = make_rand_binary 21 ~n:16 ~m:12 in
  match Bb.solve lp with
  | Bb.Optimal _, stats ->
    let d = stats.Bb.deductions in
    Alcotest.(check int) "rc fixings" 0 d.Bb.rc_fixed;
    Alcotest.(check int) "propagation fixings" 0 d.Bb.prop_fixings;
    Alcotest.(check int) "propagation prunes" 0 d.Bb.prop_prunes;
    Alcotest.(check int) "cut rounds" 0 d.Bb.cut_rounds_run;
    Alcotest.(check int) "pc branchings" 0 d.Bb.pc_branchings
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

(* -------- parallel search (jobs > 1) -------- *)

(* Big enough that the search outlives the sequential seeding phase and
   nodes actually flow through the worker domains. *)
let parallel_knapsack () =
  knapsack
    (Array.init 18 (fun i -> Float.of_int (5 + ((i * 7) mod 11))))
    (Array.init 18 (fun i -> Float.of_int (2 + ((i * 5) mod 9))))
    31.

let test_parallel_matches_sequential () =
  let lp, _ = parallel_knapsack () in
  let solve jobs =
    let options = { Bb.default_options with Bb.jobs } in
    Bb.solve ~options lp
  in
  match (solve 1, solve 4) with
  | (Bb.Optimal { obj = a; _ }, s1), (Bb.Optimal { obj = b; _ }, s4) ->
    check_float "same optimum" a b;
    Alcotest.(check int) "no workers sequential" 0 (Array.length s1.Bb.workers);
    Alcotest.(check int) "one row per worker" 4 (Array.length s4.Bb.workers)
  | (o1, _), (o4, _) ->
    Alcotest.failf "unexpected %a / %a" Bb.pp_outcome o1 Bb.pp_outcome o4

let test_parallel_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Eq 1.);
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Ge 2.);
  let options = { Bb.default_options with Bb.jobs = 4 } in
  match Bb.solve ~options lp with
  | Bb.Infeasible, _ -> ()
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_parallel_bad_jobs () =
  let lp, _ = knapsack [| 1. |] [| 1. |] 1. in
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Branch_bound.solve: jobs < 1")
    (fun () ->
      ignore (Bb.solve ~options:{ Bb.default_options with Bb.jobs = 0 } lp))

let test_deterministic_reproducible () =
  let lp, _ = parallel_knapsack () in
  let solve () =
    let options =
      { Bb.default_options with Bb.jobs = 3; Bb.deterministic = true }
    in
    Bb.solve ~options lp
  in
  match (solve (), solve ()) with
  | (Bb.Optimal { obj = a; _ }, s1), (Bb.Optimal { obj = b; _ }, s2) ->
    check_float "same optimum" a b;
    Alcotest.(check int) "same node count" s1.Bb.nodes s2.Bb.nodes
  | (o1, _), (o2, _) ->
    Alcotest.failf "unexpected %a / %a" Bb.pp_outcome o1 Bb.pp_outcome o2

let test_parallel_incumbent_serialized () =
  (* The incumbent callback must never run concurrently with itself and
     must only see strictly improving objectives, even with 4 workers
     racing. The reentrancy flag would trip if two domains overlapped
     inside the callback. *)
  let lp, _ = parallel_knapsack () in
  let in_callback = Atomic.make false in
  let overlaps = Atomic.make 0 in
  let tears = Atomic.make 0 in
  let last = ref Float.infinity (* protected by the solver's user lock *) in
  let on_incumbent obj _x =
    if not (Atomic.compare_and_set in_callback false true) then
      Atomic.incr overlaps;
    if obj >= !last -. 1e-9 then Atomic.incr tears;
    last := obj;
    Domain.cpu_relax ();
    Atomic.set in_callback false
  in
  let options =
    {
      Bb.default_options with
      Bb.jobs = 4;
      Bb.on_incumbent = Some on_incumbent;
    }
  in
  match Bb.solve ~options lp with
  | Bb.Optimal _, stats ->
    Alcotest.(check int) "no concurrent callbacks" 0 (Atomic.get overlaps);
    Alcotest.(check int) "strictly improving sequence" 0 (Atomic.get tears);
    Alcotest.(check bool) "incumbents seen" true (stats.Bb.incumbents >= 1)
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let test_parallel_node_limit () =
  let lp, _ = parallel_knapsack () in
  let options = { Bb.default_options with Bb.jobs = 4; Bb.max_nodes = 30 } in
  match Bb.solve ~options lp with
  | Bb.Limit_reached { bound; _ }, stats ->
    (* soft target: every worker may overshoot by at most one node *)
    Alcotest.(check bool) "near the limit" true (stats.Bb.nodes <= 30 + 5);
    Alcotest.(check bool) "bound is finite or -inf" true
      (Float.is_finite bound || bound = Float.neg_infinity)
  | Bb.Optimal _, stats ->
    (* legal only if the whole tree fit under the limit *)
    Alcotest.(check bool) "finished under limit" true (stats.Bb.nodes <= 30 + 5)
  | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel b&b equals sequential b&b" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lp = make_rand_binary seed ~n:9 ~m:6 in
      let solve jobs =
        Bb.solve ~options:{ Bb.default_options with Bb.jobs } lp
      in
      match (solve 1, solve 3) with
      | (Bb.Optimal { obj = a; _ }, _), (Bb.Optimal { obj = b; _ }, _) ->
        Float.abs (a -. b) <= 1e-6
      | (Bb.Infeasible, _), (Bb.Infeasible, _) -> true
      | _, _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "branch-bound"
    [
      ( "hand-checked",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "infeasible" `Quick test_infeasible_milp;
          Alcotest.test_case "integrality gap" `Quick test_integrality_gap;
          Alcotest.test_case "general integer" `Quick test_general_integer;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "value orders agree" `Quick
            test_value_orders_agree;
          Alcotest.test_case "node orders agree" `Quick test_node_orders_agree;
          Alcotest.test_case "custom branch rule" `Quick
            test_custom_branch_rule;
          Alcotest.test_case "incumbent callback" `Quick
            test_on_incumbent_callback;
          Alcotest.test_case "fractionality" `Quick test_fractionality;
        ] );
      ( "historical",
        [
          Alcotest.test_case "default node counts frozen" `Quick
            test_default_node_counts_frozen;
          Alcotest.test_case "deduction counters idle by default" `Quick
            test_default_deductions_idle;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "infeasible" `Quick test_parallel_infeasible;
          Alcotest.test_case "jobs < 1 rejected" `Quick test_parallel_bad_jobs;
          Alcotest.test_case "deterministic reproducible" `Quick
            test_deterministic_reproducible;
          Alcotest.test_case "incumbent callbacks serialized" `Quick
            test_parallel_incumbent_serialized;
          Alcotest.test_case "node limit" `Quick test_parallel_node_limit;
        ] );
      ( "properties",
        [
          qt prop_matches_brute_force;
          qt prop_warm_equals_cold;
          qt prop_parallel_matches_sequential;
        ] );
    ]
