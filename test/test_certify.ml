(* Exact certification: hand-checked verdicts, corrupted-solution
   refutation, and randomized agreement with the dense-backend oracle.
   The random generators mirror test_simplex's mixed-sense models. *)

module Lp = Ilp.Lp
module Sx = Ilp.Simplex
module C = Ilp.Certify
module R = Ilp.Rat

let solve_snap ?backend lp =
  let st = Sx.create ?backend lp in
  let r = Sx.primal st in
  (r, Sx.snapshot st)

(* max 3x + 2y st x + y <= 4; x + 3y <= 6 -> (4, 0), obj 12 *)
let basic_max () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  let y = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 4.);
  ignore (Lp.add_constr lp [ (1., x); (3., y) ] Lp.Le 6.);
  Lp.set_objective lp ~maximize:true [ (3., x); (2., y) ];
  (lp, x, y)

let test_certified_optimum () =
  let lp, _, _ = basic_max () in
  let r, snap = solve_snap lp in
  let c = C.check snap r in
  Alcotest.(check bool) "certified" true (c.C.verdict = C.Certified);
  (match c.C.detail with
  | C.Exact_optimum { obj } ->
      (* internal minimization objective of a maximization model *)
      Alcotest.(check string) "exact obj" "-12" (R.to_string obj)
  | _ -> Alcotest.fail "expected Exact_optimum");
  Alcotest.(check int) "exit code" 0 (C.exit_code c.C.verdict)

let test_certified_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Le 1.);
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Ge 2.);
  let r, snap = solve_snap lp in
  Alcotest.(check bool) "infeasible" true (r.Sx.status = Sx.Infeasible);
  Alcotest.(check bool) "has float ray" true (r.Sx.farkas <> None);
  let c = C.check snap r in
  match c.C.detail with
  | C.Farkas_proof { gap; support; _ } ->
      Alcotest.(check bool) "certified" true (c.C.verdict = C.Certified);
      Alcotest.(check bool) "positive exact gap" true (R.sign gap > 0);
      Alcotest.(check bool) "nonempty support" true (support <> [])
  | _ -> Alcotest.fail ("expected Farkas_proof, got " ^ C.describe c)

let test_refuted_objective () =
  let lp, _, _ = basic_max () in
  let r, snap = solve_snap lp in
  let lie = { r with Sx.obj = r.Sx.obj +. 1. } in
  let c = C.check snap lie in
  Alcotest.(check bool) "refuted" true (c.C.verdict = C.Refuted);
  (match c.C.detail with
  | C.Objective_mismatch { exact; reported } ->
      Alcotest.(check string) "exact side" "-12" (R.to_string exact);
      Alcotest.(check (float 1e-9)) "reported side" (-11.) reported
  | _ -> Alcotest.fail "expected Objective_mismatch");
  Alcotest.(check int) "exit code" 1 (C.exit_code c.C.verdict)

let test_refuted_bound_violation () =
  let lp, x, _ = basic_max () in
  let r, snap = solve_snap lp in
  (* At the optimum x = 4 is basic (its own bound is infinite, so it
     cannot sit nonbasic at a bound). Shrinking the snapshot's copy of
     its upper bound makes the exact basic solution provably out of
     bounds: a corrupted model/solution pair. *)
  snap.Sx.s_ub.((x :> int)) <- 3.;
  let c = C.check snap r in
  Alcotest.(check bool) "refuted" true (c.C.verdict = C.Refuted);
  match c.C.detail with
  | C.Bound_violation { column; violation } ->
      Alcotest.(check int) "column" (x :> int) column;
      Alcotest.(check (float 1e-9)) "violation" 1. violation
  | _ -> Alcotest.fail "expected Bound_violation"

let test_uncertifiable_iter_limit () =
  let lp, _, _ = basic_max () in
  let st = Sx.create lp in
  let r = Sx.primal ~max_iters:0 st in
  if r.Sx.status = Sx.Iter_limit then begin
    let c = C.check (Sx.snapshot st) r in
    Alcotest.(check bool) "uncertifiable" true
      (c.C.verdict = C.Uncertifiable);
    Alcotest.(check int) "exit code" 2 (C.exit_code c.C.verdict)
  end

let contains ~affix s =
  let n = String.length affix and ls = String.length s in
  let rec go i = i + n <= ls && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_map_rows_and_json () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Continuous in
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Le 1.);
  ignore (Lp.add_constr lp [ (1., x) ] Lp.Ge 2.);
  let r, c = C.check_lp lp in
  Alcotest.(check bool) "infeasible" true (r.Sx.status = Sx.Infeasible);
  let mapped = C.map_rows (fun i -> i + 10) c in
  (match mapped.C.detail with
  | C.Farkas_proof { support; witness_row; _ } ->
      Alcotest.(check bool) "rows shifted" true
        (List.for_all (fun i -> i >= 10) support && witness_row >= 10)
  | _ -> Alcotest.fail "expected Farkas_proof");
  let js = Ilp.Json.to_string (C.to_json ~row_name:(Printf.sprintf "r%d") c) in
  Alcotest.(check bool) "json has verdict" true
    (contains ~affix:"certified" js);
  Alcotest.(check bool) "json has kind" true
    (contains ~affix:"farkas_proof" js);
  Alcotest.(check bool) "json names rows" true (contains ~affix:"r0" js)

let test_iis_extraction () =
  (* a + b <= 5 conflicts with a >= 4, b >= 4; the slack row is noise *)
  let lp = Lp.create () in
  let a = Lp.add_var lp ~ub:10. Lp.Continuous in
  let b = Lp.add_var lp ~ub:10. Lp.Continuous in
  ignore (Lp.add_constr lp ~name:"sum_le" [ (1., a); (1., b) ] Lp.Le 5.);
  ignore (Lp.add_constr lp ~name:"a_ge" [ (1., a) ] Lp.Ge 4.);
  ignore (Lp.add_constr lp ~name:"b_ge" [ (1., b) ] Lp.Ge 4.);
  ignore (Lp.add_constr lp ~name:"junk" [ (1., a); (-1., b) ] Lp.Le 100.);
  match Ilp.Iis.extract lp with
  | Ilp.Iis.Iis { rows; names; certificate; solves } ->
      Alcotest.(check (list int)) "conflicting rows" [ 0; 1; 2 ] rows;
      Alcotest.(check (list string))
        "row names" [ "sum_le"; "a_ge"; "b_ge" ] names;
      Alcotest.(check bool) "certified" true
        (certificate.C.verdict = C.Certified);
      (match certificate.C.detail with
      | C.Farkas_proof { support; _ } ->
          Alcotest.(check bool) "support within IIS in original coords" true
            (List.for_all (fun i -> List.mem i rows) support)
      | _ -> Alcotest.fail "expected Farkas_proof");
      Alcotest.(check bool) "spent solves" true (solves >= 2)
  | Ilp.Iis.Feasible -> Alcotest.fail "model is infeasible"
  | Ilp.Iis.Inconclusive why -> Alcotest.fail ("inconclusive: " ^ why)

let test_iis_feasible_model () =
  let lp, _, _ = basic_max () in
  Alcotest.(check bool) "feasible outcome" true
    (Ilp.Iis.extract lp = Ilp.Iis.Feasible)

(* -------- integration: search-level certification and diagnostics -- *)

module Bb = Ilp.Branch_bound

(* small MILP with a real tree: maximize x + y + z, binaries, one
   knapsack that forces a fractional root *)
let small_milp () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  let z = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (3., x); (5., y); (7., z) ] Lp.Le 9.);
  Lp.set_objective lp ~maximize:true [ (4., x); (5., y); (6., z) ];
  lp

let test_bb_certify_levels () =
  let lp = small_milp () in
  let run level =
    let options = { Bb.default_options with Bb.certify_level = level } in
    snd (Bb.solve ~options lp)
  in
  let off = run Bb.Cert_off in
  Alcotest.(check int) "off checks nothing" 0
    off.Bb.certification.Bb.cert_checked;
  let root = run Bb.Cert_root in
  Alcotest.(check int) "root checks once" 1
    root.Bb.certification.Bb.cert_checked;
  Alcotest.(check int) "root certifies" 1
    root.Bb.certification.Bb.cert_certified;
  Alcotest.(check bool) "root certificate kept" true
    (root.Bb.certification.Bb.root_certificate <> None);
  let all = run Bb.Cert_all in
  let c = all.Bb.certification in
  Alcotest.(check int) "all checks every node" all.Bb.nodes
    c.Bb.cert_checked;
  Alcotest.(check int) "nothing refuted" 0 c.Bb.cert_refuted;
  Alcotest.(check int) "everything certified" c.Bb.cert_checked
    c.Bb.cert_certified;
  (* identical search under observation: node counts must not move *)
  Alcotest.(check int) "certification does not steer" off.Bb.nodes
    all.Bb.nodes

let test_certificate_diagnostics () =
  let module A = Ilp.Analyze in
  let lp, _, _ = basic_max () in
  (match A.certificate_diagnostics lp with
  | [ d ] ->
      Alcotest.(check string) "optimal code" "certificate-optimal" d.A.code;
      Alcotest.(check bool) "info severity" true (d.A.severity = A.Info)
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 diagnostic, got %d"
                           (List.length ds)));
  let bad = Lp.create () in
  let x = Lp.add_var bad ~ub:10. Lp.Continuous in
  ignore (Lp.add_constr bad ~name:"lo" [ (1., x) ] Lp.Le 1.);
  ignore (Lp.add_constr bad ~name:"hi" [ (1., x) ] Lp.Ge 2.);
  let ds = A.certificate_diagnostics ~iis:true bad in
  let infeas =
    List.filter (fun (d : A.diagnostic) -> d.A.code = "certificate-infeasible")
      ds
  in
  let iis_rows =
    List.filter (fun (d : A.diagnostic) -> d.A.code = "iis-row") ds
  in
  Alcotest.(check int) "one infeasibility finding" 1 (List.length infeas);
  Alcotest.(check bool) "all error severity" true
    (List.for_all (fun (d : A.diagnostic) -> d.A.severity = A.Error) infeas);
  Alcotest.(check int) "both conflict rows named" 2 (List.length iis_rows);
  Alcotest.(check bool) "iis rows are row-scoped" true
    (List.for_all (fun (d : A.diagnostic) -> d.A.row <> None) iis_rows)

(* -------- randomized properties -------- *)

let make_rand_mixed seed ~n ~m =
  let rng = Taskgraph.Prng.create seed in
  let lp = Lp.create () in
  let vars =
    Array.init n (fun _ ->
        if Taskgraph.Prng.bool rng 0.2 then
          Lp.add_var lp ~lb:(-3.) ~ub:4. Lp.Continuous
        else Lp.add_var lp ~ub:5. Lp.Continuous)
  in
  let x0 =
    Array.init n (fun j ->
        let v = Lp.var_of_int lp j in
        let lo = Lp.var_lb lp v and hi = Lp.var_ub lp v in
        lo +. (Taskgraph.Prng.float rng *. (hi -. lo)))
  in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.5 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng (-3) 4), v)
             else None)
    in
    if terms <> [] then begin
      let act =
        List.fold_left
          (fun acc ((c : float), (v : Lp.var)) -> acc +. (c *. x0.((v :> int))))
          0. terms
      in
      match Taskgraph.Prng.int rng 3 with
      | 0 ->
          ignore
            (Lp.add_constr lp terms Lp.Le
               (act +. (Taskgraph.Prng.float rng *. 3.)))
      | 1 ->
          ignore
            (Lp.add_constr lp terms Lp.Ge
               (act -. (Taskgraph.Prng.float rng *. 3.)))
      | _ -> ignore (Lp.add_constr lp terms Lp.Eq act)
    end
  done;
  let obj =
    Array.to_list vars
    |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng (-3) 3), v))
  in
  Lp.set_objective lp ~maximize:true obj;
  (lp, vars)

let certified_obj c =
  match c.C.detail with
  | C.Exact_optimum { obj } | C.Optimal_within { obj; _ } -> Some obj
  | _ -> None

let prop_random_optima_certified =
  QCheck.Test.make
    ~name:"random LP optima certify and agree with the dense oracle"
    ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, _ = make_rand_mixed seed ~n:7 ~m:7 in
      let r, snap = solve_snap lp in
      if r.Sx.status <> Sx.Optimal then false
      else
        let c = C.check snap r in
        match (c.C.verdict, certified_obj c) with
        | C.Certified, Some obj ->
            let oracle = Sx.solve ~backend:Sx.Dense lp in
            Float.abs (R.to_float obj -. oracle.Sx.obj)
            <= 1e-6 *. (1. +. Float.abs oracle.Sx.obj)
        | _ -> false)

let prop_dense_backend_certifies =
  QCheck.Test.make
    ~name:"dense-backend solves certify through the greedy pivot fallback"
    ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, _ = make_rand_mixed seed ~n:6 ~m:6 in
      let r, snap = solve_snap ~backend:Sx.Dense lp in
      if r.Sx.status <> Sx.Optimal then false
      else begin
        let c = C.check snap r in
        snap.Sx.s_pivot_order = None && c.C.verdict = C.Certified
      end)

let prop_corrupted_refuted =
  QCheck.Test.make ~name:"corrupted objectives are refuted" ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, _ = make_rand_mixed seed ~n:7 ~m:7 in
      let r, snap = solve_snap lp in
      if r.Sx.status <> Sx.Optimal then false
      else
        let lie = { r with Sx.obj = r.Sx.obj +. 0.5 } in
        let c = C.check snap lie in
        c.C.verdict = C.Refuted)

let prop_infeasible_farkas_certified =
  QCheck.Test.make
    ~name:"contradictory random systems yield exact Farkas certificates"
    ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
      let lp, vars = make_rand_mixed seed ~n:6 ~m:5 in
      (* wedge a contradiction across all variables *)
      let terms = Array.to_list vars |> List.map (fun v -> (1., v)) in
      let mid = 1. +. Float.of_int (seed mod 5) in
      ignore (Lp.add_constr lp terms Lp.Le mid);
      ignore (Lp.add_constr lp terms Lp.Ge (mid +. 1.5));
      let r, snap = solve_snap lp in
      r.Sx.status = Sx.Infeasible
      &&
      let c = C.check snap r in
      match c.C.detail with
      | C.Farkas_proof { gap; support; _ } ->
          c.C.verdict = C.Certified && R.sign gap > 0 && support <> []
      | _ -> false)

(* Regression: the root relaxation of all six paper evaluation graphs
   must still certify exactly under the default (devex) pricing — the
   devex/bound-flip engine may reach a different optimal basis than the
   historical one, but every basis it reports has to survive rational
   re-derivation. Table 4 design points, C = 70, Ms = 30. *)
let test_paper_graphs_root_certify () =
  List.iter
    (fun (gno, n, l) ->
      let g = Taskgraph.Examples.paper_graph gno in
      let spec =
        Temporal.Spec.make ~graph:g
          ~allocation:(Hls.Component.ams (2, 2, 1))
          ~capacity:70 ~scratch:30 ~latency_relax:l ~num_partitions:n ()
      in
      let vars = Temporal.Formulation.build spec in
      let r, cert = C.check_lp vars.Temporal.Vars.lp in
      Alcotest.(check bool)
        (Printf.sprintf "graph %d root solved" gno)
        true
        (r.Sx.status = Sx.Optimal || r.Sx.status = Sx.Infeasible);
      Alcotest.(check bool)
        (Printf.sprintf "graph %d root certified" gno)
        true
        (cert.C.verdict = C.Certified))
    [ (1, 3, 1); (2, 4, 1); (3, 3, 1); (4, 2, 1); (5, 2, 1); (6, 2, 1) ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "certify"
    [
      ( "hand-checked",
        [
          Alcotest.test_case "certified optimum" `Quick test_certified_optimum;
          Alcotest.test_case "certified infeasible" `Quick
            test_certified_infeasible;
          Alcotest.test_case "refuted objective" `Quick test_refuted_objective;
          Alcotest.test_case "refuted bound violation" `Quick
            test_refuted_bound_violation;
          Alcotest.test_case "iter-limit uncertifiable" `Quick
            test_uncertifiable_iter_limit;
          Alcotest.test_case "map_rows and json" `Quick test_map_rows_and_json;
          Alcotest.test_case "iis extraction" `Quick test_iis_extraction;
          Alcotest.test_case "iis on feasible model" `Quick
            test_iis_feasible_model;
        ] );
      ( "integration",
        [
          Alcotest.test_case "branch-and-bound certify levels" `Quick
            test_bb_certify_levels;
          Alcotest.test_case "certificate diagnostics" `Quick
            test_certificate_diagnostics;
          Alcotest.test_case "paper graphs root-certify under devex" `Slow
            test_paper_graphs_root_certify;
        ] );
      ( "properties",
        [
          qt prop_random_optima_certified;
          qt prop_dense_backend_certifies;
          qt prop_corrupted_refuted;
          qt prop_infeasible_farkas_certified;
        ] );
    ]
