The graph subcommand prints a summary of a built-in specification:

  $ ../../bin/tpart.exe graph -g diamond
  diamond: 4 tasks, 5 ops, 4 task edges (bw 10), kinds: add=2 sub=1 mul=2
  critical path: 4 control steps

Unknown graphs are rejected with a helpful message:

  $ ../../bin/tpart.exe graph -g nosuch 2>&1 | head -2
  tpart: option '-g': unknown graph "nosuch" (expected paper:1..6, figure1,
         diamond, mixer, chain:N, random:TASKS,OPS,SEED, file:PATH)

The estimator reports a greedy segmentation:

  $ ../../bin/tpart.exe estimate -g diamond --adders 1 --muls 1 --subs 1
  1 segments (comm 0): [1:0,1,2,3]

Solving a small instance prints the flow trace and the design; the
device is too small for all three units, forcing two configurations:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 | sed 's/(.* nodes.*)/(..)/'
  input: chain3: 3 tasks, 3 ops, 2 task edges (bw 2), kinds: add=2 mul=1
  estimate: 3 segment(s), greedy comm cost 2
  N = 3 (pinned)
  mobility: cp 3 steps, 5 with relaxation
  model: 64 variables, 149 constraints
  solve: optimal (..)
  communication cost: 2 (peak memory 1 / Ms 64)
  partitions used: 3 of 3
  partition 1:
    c0: add0@cs1/add16
  partition 2:
    c1: mul1@cs2/mul16
  partition 3:
    c2: add2@cs3/add16
  

The --stats flag reports the LP engine's work: basis factorizations,
LU fill-in, eta updates, the refactorization triggers, and solve times
(numbers masked — they vary with the machine):

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 | grep lp-stats | sed 's/[0-9][0-9]*\(\.[0-9]*\)\?/N/g'

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --stats | grep lp-stats | sed 's/[0-9][0-9]*\(\.[0-9]*\)\?/N/g'
  lp-stats: factorizations=N fill=N etas=N refactors(eta/numeric/residual)=N/N/N factor=Ns ftran=Ns btran=Ns pivots=N flips=N gc(minor/major)=N/Nw compactions=N

--stats also reports the node-deduction counters (reduced-cost fixing,
domain propagation, the cut pool, pseudo-cost branching) as a table
with computed column widths; with the default paper-faithful
configuration every counter stays at zero:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --stats | sed -n '/deductions:/,/pc-branchings/p'
  deductions:
    counter          total
    rc-fixed             0
    prop-fixings         0
    prop-prunes          0
    prop-local-hits      0
    cut-rounds           0
    cover-cuts       0/0/0
    clique-cuts      0/0/0
    pc-branchings        0

Enabling the deduction stack shrinks the tree and moves the counters
(sequential solves are deterministic, so the exact values are stable);
the columns re-align to the widest rendered cell:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --rc-fix --propagate --cuts --branching pseudocost --stats | sed -n '/^solve/p;/deductions:/,/pc-branchings/p' | sed 's/[0-9.]*s)$/Ts)/'
  solve: optimal (comm cost 2, 3 partitions) (11 nodes, Ts)
  deductions:
    counter          total
    rc-fixed             2
    prop-fixings        70
    prop-prunes          0
    prop-local-hits      0
    cut-rounds           3
    cover-cuts       2/2/0
    clique-cuts      2/2/0
    pc-branchings        0

--json replaces the human-readable report with one machine-readable
object, including the deduction counters, both convergence timelines
(incumbent and dual bound — their last entries reconstruct the final
gap) and the explicit wall-clock deadline verdict (times masked —
they vary with the machine):

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --json | sed 's/"t":[0-9.e-]*/"t":T/g; s/"elapsed": [0-9.e-]*/"elapsed": E/'
  {"outcome": "optimal", "comm_cost": 2, "vars": 64, "constrs": 149, "nodes": 22, "incumbents": 1, "max_depth": 8, "deductions": {"rc_fixed": 0, "prop_fixings": 0, "prop_prunes": 0, "prop_local_hits": 0, "cut_rounds": 0, "cover": {"separated": 0, "active": 0, "evicted": 0}, "clique": {"separated": 0, "active": 0, "evicted": 0}, "pc_branchings": 0}, "timeline": [{"t":T,"obj":2,"node":11,"source":"hook"}], "bound_timeline": [{"t":T,"bound":2}], "elapsed": E, "time_limit": 600, "time_limit_hit": false}

Each timeline entry is tagged with the source of the incumbent
(search, hook, round, dive). --heuristics enables the primal pass
(LP rounding with repair, backtracking depth-bounded diving); on this
instance the root dive reaches the optimum before the scheduler hook
fires, so the first incumbent is tagged "dive":

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --heuristics --json | tr ',' '\n' | grep -o '"source":"[a-z]*"'
  "source":"dive"

With --jobs N the branch-and-bound search runs on N worker domains and
--stats reports one row per worker with steal/handoff rates (numbers
masked and whitespace squeezed — node distribution across workers is
timing-dependent, and the computed column widths follow the values):

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --jobs 2 --stats | sed -n '/^solve/p;/workers:/,$p' | sed 's/[0-9][0-9]*\(\.[0-9]*\)\?/N/g' | tr -s ' '
  solve: optimal (comm cost N, N partitions) (N nodes, Ns)
  workers:
   id nodes incumbents steals steals/s handoffs handoffs/s idle idle% pivots
   N N N N N N N Ns N N
   N N N N N N N Ns N N

--pricing selects the simplex pricing rule inside every worker engine
(each worker owns a private engine, so the rule applies across the
pool); both rules reach the same optimum:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --jobs 2 --pricing devex | sed -n '/^solve/p' | sed 's/(.* nodes.*)/(..)/'
  solve: optimal (..)

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --jobs 2 --pricing partial | sed -n '/^solve/p' | sed 's/(.* nodes.*)/(..)/'
  solve: optimal (..)

--trace records the solve as a structured event stream (JSONL here;
a .json suffix selects the Chrome trace_event format instead), and the
trace subcommands inspect it offline. The event count is stable for a
deterministic sequential solve:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --trace run.jsonl | tail -1
  wrote run.jsonl (96 events)

The offline summary reproduces the node totals of the live solve — 22
nodes, max depth 8, exactly as the --json report above — and the other
numbers are masked (pivot and LU counts vary with the machine, times
always do):

  $ ../../bin/tpart.exe trace summary run.jsonl | grep '^nodes'
  nodes         opened=22 closed=22 max_depth=8

  $ ../../bin/tpart.exe trace summary run.jsonl | sed 's/[0-9][0-9]*\(\.[0-9]*\)\?/N/g' | grep -v '^phases'
  events        N in N s, N writer (main: N)
  nodes         opened=N closed=N max_depth=N
  close reasons bound=N branched=N infeasible=N
  lp            solves=N pivots=N flips=N time=N s
  lu            factors=N refactors: eta=N numeric=N
  cuts          rounds=N separated=N
  propagation   runs=N fixings=N conflicts=N
  incumbents    N (first N @Ns node N, best N @Ns node N)
  


The phases line sorts by self-time, so at sub-millisecond resolution
the formulate/presolve order is machine-dependent; check its content
order-insensitively:

  $ ../../bin/tpart.exe trace summary run.jsonl | sed -n 's/^phases  *//p' | tr -s ' ' '\n' | sed 's|=[0-9.e-]*s/[0-9]*$|=Ns/N|' | sort
  estimate=Ns/N
  formulate=Ns/N
  presolve=Ns/N
  search=Ns/N

The stream checker verifies writer/sequence consistency:

  $ ../../bin/tpart.exe trace validate run.jsonl
  run.jsonl: 96 records, stream consistent

The tree view reconstructs the search tree from the event stream as
Graphviz DOT — 22 nodes give 21 parent edges:

  $ ../../bin/tpart.exe trace tree run.jsonl | head -3
  digraph search {
    node [shape=box, style=filled, fontname="monospace", fontsize=9];
    n1 [label="#1 d=0\nobj=2.63678e-16\nbranched", fillcolor=lightblue];

  $ ../../bin/tpart.exe trace tree run.jsonl | grep -c ' -> '
  21

The Chrome variant round-trips through the same tools:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --trace run.json > /dev/null
  $ ../../bin/tpart.exe trace validate run.json
  run.json: 96 records, stream consistent

--metrics samples live solver telemetry to a JSONL snapshot stream and
--progress prints a gap-convergence summary line on stderr once the
search finishes. The node total is exact — the same 22 nodes as the
--json report — while pivot and factorization counts vary with the
machine and times always do (masked):

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --metrics run-metrics.jsonl --progress 2>&1 >/dev/null | sed 's/pivots=[0-9]*/pivots=P/; s/factorizations=[0-9]*/factorizations=F/; s/elapsed=[0-9.]*/elapsed=T/'
  progress: nodes=22 pivots=P factorizations=F bound=2 incumbent=2 gap=0.00% elapsed=T/600s

The stream validator checks the codec and the monotonicity invariants;
a fast solve produces exactly one snapshot, the exact final one taken
after every worker joined:

  $ ../../bin/tpart.exe metrics validate run-metrics.jsonl
  run-metrics.jsonl: 1 snapshots, stream consistent

The offline summary renders the final snapshot (numbers masked — they
vary with the machine; the gauges that were never polled print "-"):

  $ ../../bin/tpart.exe metrics summary run-metrics.jsonl | sed 's/[0-9][0-9]*\(\.[0-9]*\)\?/N/g'
  snapshots      N over Ns (last at Ns)
  search         nodes=N (N/s) incumbents=N certified=N
  bounds         best_bound=N incumbent=N open=- workers=N
  lp             solves=N pivots=N (N/s) flips=N
  hyper-sparse   ftran=N/N (N%) btran=N/N (N%)
  lu             factorizations=N refactorizations=N probes=N
  deductions     cut_rounds=N cuts=N prop_runs=N prop_fixings=N
  heuristics     runs=N incumbents=N
  pool           steals=N handoffs=N hungry_polls=N depth=-
  factor_seconds count=N sum=Ns max=Ns mean=Ns
  lp_seconds     count=N sum=Ns max=Ns mean=Ns
  


The same pair works under parallel search — node distribution across
workers is timing-dependent (nodes masked) but the converged bound,
incumbent and gap are not, and the final snapshot is still exact:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --jobs 2 --metrics run-metrics2.jsonl --progress 2>&1 >/dev/null | sed 's/nodes=[0-9]*/nodes=N/; s/pivots=[0-9]*/pivots=P/; s/factorizations=[0-9]*/factorizations=F/; s/elapsed=[0-9.]*/elapsed=T/'
  progress: nodes=N pivots=P factorizations=F bound=2 incumbent=2 gap=0.00% elapsed=T/600s

  $ ../../bin/tpart.exe metrics validate run-metrics2.jsonl
  run-metrics2.jsonl: 1 snapshots, stream consistent

  $ ../../bin/tpart.exe metrics summary run-metrics2.jsonl | grep '^bounds'
  bounds         best_bound=2 incumbent=2 open=- workers=2

--prometheus writes the final snapshot as a Prometheus text exposition
(values masked):

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --prometheus run.prom | tail -1
  wrote run.prom

  $ grep -E '^tpart_(nodes_total|lu_factorizations_total|best_bound) ' run.prom | sed 's/ [0-9.]*$/ V/'
  tpart_nodes_total V
  tpart_lu_factorizations_total V
  tpart_best_bound V

bench diff compares two benchmark JSON reports cell by cell: identical
reports are clean (exit 0), a slowdown past the threshold is a
regression (exit 1), and reports sharing no schema exit 2:

  $ cat > bench_old.json <<'EOF'
  > {"lp": [{"graph": 1, "n": 3, "l": 1, "solve_s": 1.0, "nodes": 100, "solved": true}]}
  > EOF
  $ sed 's/"solve_s": 1.0/"solve_s": 4.0/' bench_old.json > bench_new.json

  $ ../../bin/tpart.exe bench diff bench_old.json bench_old.json
  sections: lp
  bench diff: 5 cell(s) compared, 0 regression(s), 0 improvement(s)

  $ ../../bin/tpart.exe bench diff bench_old.json bench_new.json
  sections: lp
    REGRESSION  lp graph=1 n=3 l=1.solve_s: 1 -> 4  (4.00x)
  bench diff: 5 cell(s) compared, 1 regression(s), 0 improvement(s)
  [1]

  $ echo '{"alien": [{"a": 1}]}' > bench_alien.json
  $ ../../bin/tpart.exe bench diff bench_old.json bench_alien.json
  tpart bench diff: schema mismatch: the two reports share no benchmark section
  [2]

An infeasible instance exits with code 1:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 2 > /dev/null
  [1]

The explore subcommand sweeps design points and prints the frontier:

  $ ../../bin/tpart.exe explore -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 --l-max 2 --n-max 3 | sed 's/| [0-9.]*s$/| T/'
   L    N    | result       | partitions | time
   0    1    | infeasible   | -          | T
   0    2    | infeasible   | -          | T
   0    3    | cost 2       | 3          | T
   1    1    | infeasible   | -          | T
   1    2    | infeasible   | -          | T
   1    3    | cost 2       | 3          | T
   2    1    | infeasible   | -          | T
   2    2    | infeasible   | -          | T
   2    3    | cost 2       | 3          | T
  
  Pareto frontier (latency relaxation vs communication):
   L    N    | result       | partitions | time
   0    3    | cost 2       | 3          | T

Static analysis of a clean formulated model reports no errors and
exits 0 (the two redundant-row notes are informational — the scratch
memory bound does not bind on this tiny instance):

  $ ../../bin/tpart.exe analyze -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3
  model chain3: 64 vars, 149 rows
  row census: set-partitioning 6 set-packing 19 precedence 54 knapsack 18 big-M/linking 52
  coefficients: 436 nonzeros, |a| in [1, 42] (ratio 42), max |rhs| 64
  info[trivially-redundant-row]: row mem_p2 is implied by the variable bounds (activity in [0, 2] <= 64 always holds)
  info[trivially-redundant-row]: row mem_p3 is implied by the variable bounds (activity in [0, 2] <= 64 always holds)
  0 error(s), 0 warning(s), 2 info
  audit: 64/64 vars, 149/149 rows (actual/census)
  var census: y 9 x 9 w 4 u 6 o 3 z 9 c 9 s 15
  row census: uniq 3 order 4 wdef 4 mem 2 assign 3 map 1 dep 6 o-coupling 6 z/u-coupling 42 cap 3 c_def 9 excl 32 tighten 25 step-cuts 9
  formulation invariants ok

A broken LP file — duplicated rows plus a constraint its bounds can
never satisfy — is diagnosed and the command exits 1:

  $ cat > broken.lp <<'EOF'
  > Minimize
  >  obj: x + y
  > Subject To
  >  r1: x + y >= 1
  >  r1: x + y >= 1
  >  force: x >= 2
  > Bounds
  >  x <= 1
  >  y <= 1
  > End
  > EOF

  $ ../../bin/tpart.exe analyze --from-lp broken.lp
  model parsed: 2 vars, 3 rows
  row census: knapsack 2 variable-bound 1
  coefficients: 5 nonzeros, |a| in [1, 1] (ratio 1), max |rhs| 2
  error[trivially-infeasible-row]: row force is infeasible by bound arithmetic: activity in [0, 1] cannot satisfy >= 2
  warn[duplicate-row-name]: row name r1 is used by rows 0, 1
  warn[duplicate-row]: row r1 duplicates row r1 (identical normalized terms and rhs)
  1 error(s), 2 warning(s), 0 info
  [1]

Saving and reloading a specification round-trips:

  $ ../../bin/tpart.exe graph -g diamond --save spec.tg
  diamond: 4 tasks, 5 ops, 4 task edges (bw 10), kinds: add=2 sub=1 mul=2
  critical path: 4 control steps
  wrote spec.tg

  $ ../../bin/tpart.exe graph -g file:spec.tg
  diamond: 4 tasks, 5 ops, 4 task edges (bw 10), kinds: add=2 sub=1 mul=2
  critical path: 4 control steps

Exact certification (--certify) re-checks the root relaxation in
rational arithmetic and prints the verdict counts plus the root
certificate; a feasible solve certifies as an exact optimum:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --certify | grep certification
  certification: checked=1 certified=1 refuted=0 uncertifiable=0 root=certified: exact optimum, objective 0

With --certify the exit code reports the aggregate certificate verdict
(0 certified / 1 refuted / 2 uncertifiable) instead of the outcome
codes: the two-partition instance is integer-infeasible (exit 1 in the
plain run above) but its root relaxation certifies, so the exit is 0:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 2 --certify > /dev/null

A capacity the cheapest unit set already exceeds makes the relaxation
itself infeasible; the certificate is then an exactly-checked Farkas
proof and the text report names the support rows in formulation terms:

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 1 -l 2 -n 3 --certify | sed -n '/^certification/p;/uniq_t0/p;/cap_p/p'
  certification: checked=1 certified=1 refuted=0 uncertifiable=0 root=certified: Farkas infeasibility proof, gap 1 over 18 rows (witness row 13)
    uniq_t0: set partitioning: the task lies in exactly one partition (eq. 1)

--json embeds the same certificate as a structured object (exact
rational gap as a string, float approximation alongside):

  $ ../../bin/tpart.exe solve -g chain:3 --adders 1 --muls 1 --subs 0 -c 1 -l 2 -n 3 --certify --json | tr ',' '\n' | grep -E '"verdict"|"kind"|"gap"|"witness_row"' | tr -d ' '
  "root":{"verdict":"certified"
  "kind":"farkas_proof"
  "gap":"1"
  "witness_row":{"index":13

analyze --iis extracts an irreducible infeasible subsystem by the
deletion filter, certifies the remainder's Farkas proof exactly, and
names each member row; the capacity rows and the assignment rows that
force usage form the minimal conflict:

  $ ../../bin/tpart.exe analyze -g chain:3 --adders 1 --muls 1 --subs 0 -c 1 -l 2 -n 3 --iis | sed -n '1p;/uniq\|assign\|cap/p;$p'
  irreducible infeasible subsystem: 12 row(s), 31 LP solves
    uniq_t2: set partitioning: the task lies in exactly one partition (eq. 1)
    assign_i2: unique operation assignment within its window (eq. 6)
    cap_p1: FPGA resource capacity of a partition (eq. 11)
    cap_p2: FPGA resource capacity of a partition (eq. 11)
    cap_p3: FPGA resource capacity of a partition (eq. 11)
  certified: Farkas infeasibility proof, gap 11/42 over 12 rows (witness row 15)

On an LP-feasible model the flag reports that no subsystem exists and
exits 0 (integrality is not considered):

  $ ../../bin/tpart.exe analyze -g chain:3 --adders 1 --muls 1 --subs 0 -c 45 -l 2 -n 3 --iis
  LP relaxation feasible: no irreducible infeasible subsystem

--iis also composes with --from-lp and --json; the broken model above
has a one-row conflict (its bounds alone refute row force):

  $ ../../bin/tpart.exe analyze --from-lp broken.lp --iis --json
  {"rows":[2],"names":["force"],"solves":1,"certificate":{"verdict":"certified","kind":"farkas_proof","gap":"1","gap_float":1,"witness_row":{"index":2,"name":"force"},"rows":[{"index":2,"name":"force"}]}}
