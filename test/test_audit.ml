(* Tests for Temporal.Audit: the formulation-shape auditor, checked on
   clean builds across option presets and on seeded model mutations. *)

module Lp = Ilp.Lp
module F = Temporal.Formulation
module Audit = Temporal.Audit

let presets =
  [
    ("default", F.default_options);
    ("base", F.base_options);
    ("tightened", F.tightened_options);
    ("fortet", { F.tightened_options with F.linearization = F.Fortet });
    ("literal", { F.base_options with F.literal_cs_exclusion = true });
  ]

let graphs () =
  [
    ("figure1", Taskgraph.Examples.figure1 ());
    ("diamond", Taskgraph.Examples.diamond ());
    ("chain3", Taskgraph.Examples.chain 3);
    ("mixer", Taskgraph.Examples.mixer ());
  ]

let spec_of g ~n =
  Temporal.Spec.make ~graph:g
    ~allocation:(Hls.Component.ams (2, 2, 1))
    ~capacity:70 ~scratch:30 ~latency_relax:1 ~num_partitions:n ()

let finding_codes r =
  List.map (fun (f : Audit.finding) -> f.Audit.code) (Audit.errors r)

(* Rebuild the model with every row except [victim]: same variables in
   the same order, so indices keep their meaning. *)
let strip_row lp victim =
  let lp' = Lp.create ~name:(Lp.name lp) () in
  for j = 0 to Lp.num_vars lp - 1 do
    let v = Lp.var_of_int lp j in
    ignore
      (Lp.add_var lp' ~name:(Lp.var_name lp v) ~lb:(Lp.var_lb lp v)
         ~ub:(Lp.var_ub lp v) (Lp.var_kind lp v))
  done;
  let removed = ref 0 in
  Lp.iter_rows lp (fun i terms sense rhs ->
      if Lp.row_name lp i = victim then incr removed
      else
        ignore
          (Lp.add_constr lp' ~name:(Lp.row_name lp i)
             (List.map
                (fun (c, (v : Lp.var)) -> (c, Lp.var_of_int lp' (v :> int)))
                terms)
             sense rhs));
  Alcotest.(check int) (Printf.sprintf "removed %s" victim) 1 !removed;
  lp'

let test_clean_across_presets () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun n ->
          let spec = spec_of g ~n in
          List.iter
            (fun (pname, options) ->
              let vars = F.build ~options spec in
              let r = Audit.audit_vars ~options vars in
              let label what =
                Printf.sprintf "%s n=%d %s %s" gname n pname what
              in
              Alcotest.(check (list string)) (label "errors") []
                (finding_codes r);
              Alcotest.(check int)
                (label "var census")
                (Temporal.Vars.num_vars vars)
                r.Audit.census.Audit.total_vars;
              Alcotest.(check int)
                (label "row census")
                (Temporal.Vars.num_constrs vars)
                r.Audit.census.Audit.total_rows)
            presets)
        [ 1; 2; 3 ])
    (graphs ())

let test_missing_row_detected () =
  let spec = spec_of (Taskgraph.Examples.diamond ()) ~n:2 in
  let options = F.default_options in
  let vars = F.build ~options spec in
  let tampered = strip_row vars.Temporal.Vars.lp "uniq_t0" in
  let r = Audit.audit ~options spec tampered in
  Alcotest.(check bool) "not clean" false (Audit.is_clean r);
  let messages =
    List.map (fun (f : Audit.finding) -> f.Audit.message) (Audit.errors r)
  in
  Alcotest.(check bool) "missing-row finding" true
    (List.mem "missing-row" (finding_codes r));
  Alcotest.(check bool) "names the victim row" true
    (List.exists
       (fun m ->
         let n = String.length "uniq_t0" and h = String.length m in
         let rec go i = i + n <= h && (String.sub m i n = "uniq_t0" || go (i + 1)) in
         go 0)
       messages)

let test_unexpected_tightening_rows () =
  (* built with the tightening cuts, audited as if without: every cut28/
     cut29 row is unexpected and the row census disagrees *)
  let spec = spec_of (Taskgraph.Examples.diamond ()) ~n:2 in
  let vars = F.build ~options:F.tightened_options spec in
  let r = Audit.audit_vars ~options:F.base_options vars in
  let codes = finding_codes r in
  Alcotest.(check bool) "unexpected-row" true (List.mem "unexpected-row" codes);
  Alcotest.(check bool) "row-census" true (List.mem "row-census" codes)

let test_linearization_kind_checked () =
  (* Glover build audited as Fortet: the z variables must be flagged as
     having the wrong integrality *)
  let spec = spec_of (Taskgraph.Examples.diamond ()) ~n:2 in
  let vars = F.build ~options:F.tightened_options spec in
  let fortet = { F.tightened_options with F.linearization = F.Fortet } in
  let r = Audit.audit_vars ~options:fortet vars in
  Alcotest.(check bool) "variable-kind" true
    (List.mem "variable-kind" (finding_codes r))

let test_census_standalone () =
  let spec = spec_of (Taskgraph.Examples.figure1 ()) ~n:3 in
  List.iter
    (fun (pname, options) ->
      let c = Audit.census ~options spec in
      let vars = F.build ~options spec in
      Alcotest.(check int)
        (pname ^ " vars") (Temporal.Vars.num_vars vars) c.Audit.total_vars;
      Alcotest.(check int)
        (pname ^ " rows")
        (Temporal.Vars.num_constrs vars)
        c.Audit.total_rows;
      Alcotest.(check int)
        (pname ^ " family sum")
        c.Audit.total_vars
        (List.fold_left (fun a (_, n) -> a + n) 0 c.Audit.var_families))
    presets

let test_json_shape () =
  let spec = spec_of (Taskgraph.Examples.chain 3) ~n:2 in
  let vars = F.build spec in
  let j = Audit.to_json (Audit.audit_vars vars) in
  let contains needle =
    let n = String.length needle and h = String.length j in
    let rec go i = i + n <= h && (String.sub j i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "findings key" true (contains "\"findings\":[]");
  Alcotest.(check bool) "census keys" true
    (contains "\"var_census\"" && contains "\"row_census\"")

let () =
  Alcotest.run "audit"
    [
      ( "clean",
        [
          Alcotest.test_case "all presets, all graphs" `Quick
            test_clean_across_presets;
          Alcotest.test_case "census standalone" `Quick test_census_standalone;
          Alcotest.test_case "json" `Quick test_json_shape;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "missing uniq row" `Quick test_missing_row_detected;
          Alcotest.test_case "unexpected tightening rows" `Quick
            test_unexpected_tightening_rows;
          Alcotest.test_case "linearization kind" `Quick
            test_linearization_kind_checked;
        ] );
    ]
