(* Tests for the work-sharing pool underneath the parallel branch and
   bound: deque semantics, the parallel map, and the pool's termination
   protocol (empty-pool latch, early cutoff, hunger signalling). *)

module Pool = Ilp.Pool
module Deque = Ilp.Pool.Deque

(* ---------------- Deque ---------------- *)

let test_deque_lifo () =
  let d = Deque.create () in
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Deque.length d);
  Alcotest.(check (option int)) "pop top" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "pop next" (Some 2) (Deque.pop d);
  Deque.push d 4;
  Alcotest.(check (option int)) "pop pushed" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "pop last" (Some 1) (Deque.pop d);
  Alcotest.(check (option int)) "pop empty" None (Deque.pop d)

let test_deque_bottom () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  (* bottom is the oldest element — what a worker donates *)
  Alcotest.(check (option int)) "bottom" (Some 1) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "top" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "middle" (Some 2) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty" None (Deque.pop_bottom d)

let test_deque_growth () =
  (* push far past the initial capacity, with interleaved bottom pops so
     the ring wraps around *)
  let d = Deque.create () in
  let expect = Queue.create () in
  for i = 0 to 199 do
    Deque.push d i;
    Queue.push i expect;
    if i mod 3 = 0 then begin
      match Deque.pop_bottom d with
      | Some v -> Alcotest.(check int) "fifo bottom" (Queue.pop expect) v
      | None -> Alcotest.fail "unexpected empty"
    end
  done;
  Alcotest.(check (list int))
    "to_list is top to bottom" (Deque.to_list d)
    (List.rev (List.of_seq (Queue.to_seq expect)));
  Alcotest.(check int) "fold counts all" (Deque.length d)
    (Deque.fold (fun acc _ -> acc + 1) 0 d)

(* ---------------- map ---------------- *)

let test_map_order () =
  let arr = Array.init 100 (fun i -> i) in
  let sq = Pool.map ~jobs:4 (fun x -> x * x) arr in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * x) arr) sq

let test_map_degenerate () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 succ [||]);
  Alcotest.(check (array int)) "single" [| 8 |] (Pool.map ~jobs:4 succ [| 7 |]);
  Alcotest.(check (array int))
    "jobs=1 sequential" [| 2; 3 |]
    (Pool.map ~jobs:1 succ [| 1; 2 |]);
  Alcotest.(check (array int))
    "jobs > length" [| 2; 3; 4 |]
    (Pool.map ~jobs:64 succ [| 1; 2; 3 |])

exception Boom

let test_map_exception () =
  let arr = Array.init 20 (fun i -> i) in
  Alcotest.check_raises "first failure re-raised" Boom (fun () ->
      ignore (Pool.map ~jobs:3 (fun x -> if x = 13 then raise Boom else x) arr))

(* ---------------- pool protocol ---------------- *)

let test_take_lifo_and_latch () =
  (* a crew of one: the single worker drains the pool, and the next take
     must latch (sole worker waiting + empty pool = global termination)
     rather than block forever *)
  let p = Pool.create ~workers:1 in
  Pool.push p 1;
  Pool.push p 2;
  Alcotest.(check (option int)) "lifo 1" (Some 2) (Pool.take p);
  Alcotest.(check (option int)) "lifo 2" (Some 1) (Pool.take p);
  Alcotest.(check (option int)) "latched" None (Pool.take p);
  Alcotest.(check bool) "stopped" true (Pool.stopped p)

let test_empty_steal_termination () =
  (* every worker blocks on an empty pool: all must be released with
     None instead of deadlocking *)
  let p = Pool.create ~workers:3 in
  let results =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> Pool.take p))
    |> Array.map Domain.join
  in
  Array.iter
    (fun r -> Alcotest.(check (option int)) "released empty" None r)
    results;
  Alcotest.(check bool) "latched stopped" true (Pool.stopped p)

let test_stop_keeps_items () =
  let p = Pool.create ~workers:2 in
  List.iter (Pool.push p) [ 10; 20; 30 ];
  Pool.stop p;
  Alcotest.(check (option int)) "take after stop" None (Pool.take p);
  Alcotest.(check (option int)) "try_take after stop" None (Pool.try_take p);
  Alcotest.(check (list int))
    "drain recovers queued items" [ 10; 20; 30 ]
    (List.sort compare (Pool.drain p));
  Pool.stop p (* idempotent *)

let test_early_cutoff_unblocks () =
  (* a worker blocked in take is released by stop from another domain *)
  let p = Pool.create ~workers:2 in
  let d = Domain.spawn (fun () -> Pool.take p) in
  (* wait until the worker is actually parked, then cut the search off *)
  while not (Pool.hungry p) do
    Domain.cpu_relax ()
  done;
  Pool.stop p;
  Alcotest.(check (option int)) "released by stop" None (Domain.join d)

let test_hungry_signal () =
  let p = Pool.create ~workers:2 in
  Alcotest.(check bool) "not hungry when idle-free" false (Pool.hungry p);
  let d = Domain.spawn (fun () -> Pool.take p) in
  while not (Pool.hungry p) do
    Domain.cpu_relax ()
  done;
  (* a donation feeds the parked worker and clears the hunger *)
  Pool.push p 42;
  Alcotest.(check (option int)) "donated item received" (Some 42)
    (Domain.join d);
  Alcotest.(check bool) "fed" false (Pool.hungry p);
  Pool.stop p

let test_hungry_after_latch () =
  (* Regression: [hungry] reads atomic mirrors now — after the crew
     latches the pool it must report not-hungry (donating into a
     stopped pool is wasted work), and the mirrors must agree with the
     latch. *)
  let p = Pool.create ~workers:1 in
  Alcotest.(check (option int)) "latch" None (Pool.take p);
  Alcotest.(check bool) "stopped after latch" true (Pool.stopped p);
  Alcotest.(check bool) "not hungry once stopped" false (Pool.hungry p)

let test_mirror_accounting () =
  (* Regression for the lock-free mirrors: every path that moves items
     (push/take/try_take/drain) must keep the queued mirror exact, or
     [hungry] lies and workers donate into a full pool / starve an
     empty one. Single-domain, so the mirror must be exact at every
     step. *)
  let p = Pool.create ~workers:2 in
  Alcotest.(check bool) "fresh pool not hungry" false (Pool.hungry p);
  List.iter (Pool.push p) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "take sees top" (Some 3) (Pool.take p);
  Alcotest.(check (option int)) "try_take next" (Some 2) (Pool.try_take p);
  Alcotest.(check (list int)) "drain rest" [ 1 ] (Pool.drain p);
  Alcotest.(check (option int)) "try_take on empty" None (Pool.try_take p);
  Alcotest.(check bool) "empty but nobody parked" false (Pool.hungry p);
  let d = Domain.spawn (fun () -> Pool.take p) in
  while not (Pool.hungry p) do
    Domain.cpu_relax ()
  done;
  Pool.push p 9;
  Alcotest.(check (option int)) "parked worker fed" (Some 9) (Domain.join d);
  Alcotest.(check bool) "fed, not hungry" false (Pool.hungry p);
  Pool.stop p

let test_churn_termination () =
  (* Termination detection under contention: workers that re-push work
     a bounded number of times must process every item exactly once and
     then all latch out with None — no lost wakeup, no deadlock, no
     double consumption. This is the protocol behind the parallel
     search's "solved" flag. *)
  let workers = 4 in
  let p = Pool.create ~workers in
  (* (generation, id): a worker re-pushes an item until generation 0 *)
  for i = 0 to 31 do
    Pool.push p (3, i)
  done;
  let consumed = Atomic.make 0 in
  let doms =
    Array.init workers (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Pool.take p with
              | None -> ()
              | Some (gen, id) ->
                if gen = 0 then Atomic.incr consumed
                else Pool.push p (gen - 1, id);
                loop ()
            in
            loop ()))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "every item consumed exactly once" 32
    (Atomic.get consumed);
  Alcotest.(check bool) "latched" true (Pool.stopped p);
  Alcotest.(check (list (pair int int))) "nothing left" [] (Pool.drain p)

let () =
  Alcotest.run "pool"
    [
      ( "deque",
        [
          Alcotest.test_case "lifo" `Quick test_deque_lifo;
          Alcotest.test_case "bottom" `Quick test_deque_bottom;
          Alcotest.test_case "growth" `Quick test_deque_growth;
        ] );
      ( "map",
        [
          Alcotest.test_case "order" `Quick test_map_order;
          Alcotest.test_case "degenerate" `Quick test_map_degenerate;
          Alcotest.test_case "exception" `Quick test_map_exception;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "take lifo + latch" `Quick
            test_take_lifo_and_latch;
          Alcotest.test_case "empty-steal termination" `Quick
            test_empty_steal_termination;
          Alcotest.test_case "stop keeps items" `Quick test_stop_keeps_items;
          Alcotest.test_case "early cutoff unblocks" `Quick
            test_early_cutoff_unblocks;
          Alcotest.test_case "hungry signal" `Quick test_hungry_signal;
          Alcotest.test_case "hungry after latch" `Quick
            test_hungry_after_latch;
          Alcotest.test_case "mirror accounting" `Quick
            test_mirror_accounting;
          Alcotest.test_case "churn termination" `Quick
            test_churn_termination;
        ] );
    ]
