(* Exact rational arithmetic: hand-checked identities, decimal
   rendering, and randomized algebraic properties including the
   float-conversion round trip that {!Ilp.Certify} leans on. *)

module R = Ilp.Rat

let check_str = Alcotest.(check string)
let r = R.of_ints

let test_basics () =
  check_str "1/2 + 1/3" "5/6" (R.to_string (R.add (r 1 2) (r 1 3)));
  check_str "normalized" "1/2" (R.to_string (r 17 34));
  check_str "neg den" "-1/2" (R.to_string (r 1 (-2)));
  check_str "sub to zero" "0" (R.to_string (R.sub (r 5 7) (r 5 7)));
  check_str "mul" "3/8" (R.to_string (R.mul (r 3 4) (r 1 2)));
  check_str "div" "3/2" (R.to_string (R.div (r 3 4) (r 1 2)));
  check_str "int" "-42" (R.to_string (R.of_int (-42)));
  Alcotest.(check int) "sign pos" 1 (R.sign (r 1 3));
  Alcotest.(check int) "sign neg" (-1) (R.sign (r (-1) 3));
  Alcotest.(check bool) "cmp" true (R.compare (r 1 3) (r 1 2) < 0);
  Alcotest.(check bool) "min/max" true
    (R.equal (R.min (r 1 3) (r 1 2)) (r 1 3)
    && R.equal (R.max (r 1 3) (r 1 2)) (r 1 2))

let test_big_values () =
  (* (2^60 / 3) * 3 round-trips; products well past one limb *)
  let big = R.of_float (Float.ldexp 1. 60) in
  let third = R.div big (R.of_int 3) in
  Alcotest.(check bool) "big/3*3" true
    (R.equal big (R.mul third (R.of_int 3)));
  check_str "2^60" "1152921504606846976" (R.to_string big);
  let p = R.mul big big in
  check_str "2^120" "1329227995784915872903807060280344576" (R.to_string p);
  (* exact decimal of a dyadic: 0.1 is not 1/10 in binary *)
  check_str "0.5 exact" "1/2" (R.to_string (R.of_float 0.5));
  check_str "0.1 exact" "3602879701896397/36028797018963968"
    (R.to_string (R.of_float 0.1))

let test_of_float_edges () =
  Alcotest.(check bool) "zero" true (R.is_zero (R.of_float 0.));
  Alcotest.check (Alcotest.float 0.) "tiny" 1e-300
    (R.to_float (R.of_float 1e-300));
  Alcotest.check (Alcotest.float 0.) "huge" 1e300
    (R.to_float (R.of_float 1e300));
  Alcotest.(check bool) "nan rejected" true
    (match R.of_float Float.nan with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "inf rejected" true
    (match R.of_float Float.infinity with
     | exception Invalid_argument _ -> true
     | _ -> false)

let float_gen =
  (* finite doubles across the whole dynamic range, dyadics included *)
  QCheck.Gen.(
    let* m = float_bound_inclusive 2. in
    let* e = int_range (-60) 60 in
    return (Float.ldexp (m -. 1.) e))

let arb_float = QCheck.make ~print:string_of_float float_gen

let prop_float_roundtrip =
  QCheck.Test.make ~name:"of_float/to_float round-trips exactly" ~count:500
    arb_float
    (fun f -> R.to_float (R.of_float f) = f)

let prop_float_sum_exact =
  QCheck.Test.make ~name:"exact sum refines float sum" ~count:500
    QCheck.(pair arb_float arb_float)
    (fun (a, b) ->
      (* the exact sum and the rounded float sum differ by at most one
         ulp of the result *)
      let exact = R.add (R.of_float a) (R.of_float b) in
      let s = a +. b in
      let ulp = Float.abs (Float.succ (Float.abs s) -. Float.abs s) in
      Float.abs (R.to_float exact -. s) <= ulp)

let prop_field_laws =
  QCheck.Test.make ~name:"field identities on random rationals" ~count:500
    QCheck.(triple (pair small_signed_int small_nat)
              (pair small_signed_int small_nat)
              (pair small_signed_int small_nat))
    (fun ((pa, qa), (pb, qb), (pc, qc)) ->
      let mk p q = r p (q + 1) in
      let a = mk pa qa and b = mk pb qb and c = mk pc qc in
      R.equal (R.add a b) (R.add b a)
      && R.equal (R.mul a b) (R.mul b a)
      && R.equal (R.add (R.add a b) c) (R.add a (R.add b c))
      && R.equal (R.mul (R.mul a b) c) (R.mul a (R.mul b c))
      && R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c))
      && R.equal (R.sub a b) (R.neg (R.sub b a))
      && (R.is_zero b || R.equal a (R.mul (R.div a b) b)))

let prop_division_exact =
  QCheck.Test.make ~name:"multi-limb division round-trips" ~count:300
    QCheck.(triple arb_float arb_float arb_float)
    (fun (a, b, c) ->
      (* build multi-limb numerators/denominators out of float products *)
      let x = R.mul (R.of_float a) (R.mul (R.of_float b) (R.of_float c)) in
      let d = R.add (R.mul (R.of_float b) (R.of_float b)) R.one in
      let q = R.div x d in
      R.equal x (R.mul q d))

let prop_compare_consistent =
  QCheck.Test.make ~name:"compare agrees with float compare" ~count:500
    QCheck.(pair arb_float arb_float)
    (fun (a, b) ->
      let c = R.compare (R.of_float a) (R.of_float b) in
      if a < b then c < 0 else if a > b then c > 0 else c = 0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "rat"
    [
      ( "hand-checked",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "big values" `Quick test_big_values;
          Alcotest.test_case "of_float edges" `Quick test_of_float_edges;
        ] );
      ( "properties",
        [
          qt prop_float_roundtrip;
          qt prop_float_sum_exact;
          qt prop_field_laws;
          qt prop_division_exact;
          qt prop_compare_consistent;
        ] );
    ]
