(* Tests for the MILP presolve: redundancy removal, bound propagation,
   infeasibility proofs, integer rounding, and the key property that
   presolve preserves the optimum of random binary models. *)

module Lp = Ilp.Lp
module P = Ilp.Presolve
module Bb = Ilp.Branch_bound

let check_float = Alcotest.(check (float 1e-6))

let test_redundant_row_removed () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  (* x + y <= 5 can never bind for binaries *)
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 5.);
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 1.);
  match P.presolve lp with
  | P.Reduced (out, stats) ->
    Alcotest.(check int) "one row left" 1 (Lp.num_constrs out);
    Alcotest.(check int) "one removed" 1 stats.P.rows_removed
  | P.Infeasible m -> Alcotest.failf "unexpected infeasible: %s" m

let test_infeasible_detected () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp ~name:"too_big" [ (1., x); (1., y) ] Lp.Ge 3.);
  match P.presolve lp with
  | P.Infeasible m -> Alcotest.(check string) "witness" "too_big" m
  | P.Reduced _ -> Alcotest.fail "expected infeasible"

let test_singleton_tightens () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:10. Lp.Continuous in
  ignore (Lp.add_constr lp [ (2., x) ] Lp.Le 6.);
  match P.presolve lp with
  | P.Reduced (out, _) ->
    check_float "ub tightened" 3. (Lp.var_ub out (Lp.var_of_int out 0));
    (* the row became redundant after tightening and a further pass *)
    Alcotest.(check int) "row dropped" 0 (Lp.num_constrs out)
  | P.Infeasible m -> Alcotest.failf "unexpected infeasible: %s" m

let test_integer_rounding () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:9. Lp.Integer in
  ignore (Lp.add_constr lp [ (2., x) ] Lp.Le 7.);
  (match P.presolve lp with
   | P.Reduced (out, _) ->
     (* 2x <= 7 -> x <= 3.5 -> x <= 3 for integer x *)
     check_float "floor" 3. (Lp.var_ub out (Lp.var_of_int out 0))
   | P.Infeasible m -> Alcotest.failf "unexpected infeasible: %s" m);
  (* Ge side rounds up *)
  let lp2 = Lp.create () in
  let y = Lp.add_var lp2 ~ub:9. Lp.Integer in
  ignore (Lp.add_constr lp2 [ (2., y) ] Lp.Ge 3.);
  match P.presolve lp2 with
  | P.Reduced (out, _) ->
    check_float "ceil" 2. (Lp.var_lb out (Lp.var_of_int out 0))
  | P.Infeasible m -> Alcotest.failf "unexpected infeasible: %s" m

let test_fixing_by_propagation () =
  (* x + y >= 2 for binaries fixes both to 1 *)
  let lp = Lp.create () in
  let _x = Lp.add_var lp Lp.Binary in
  let _y = Lp.add_var lp Lp.Binary in
  ignore
    (Lp.add_constr lp
       [ (1., Lp.var_of_int lp 0); (1., Lp.var_of_int lp 1) ]
       Lp.Ge 2.);
  match P.presolve lp with
  | P.Reduced (out, stats) ->
    check_float "x fixed" 1. (Lp.var_lb out (Lp.var_of_int out 0));
    check_float "y fixed" 1. (Lp.var_lb out (Lp.var_of_int out 1));
    Alcotest.(check int) "2 fixed" 2 stats.P.vars_fixed
  | P.Infeasible m -> Alcotest.failf "unexpected infeasible: %s" m

let test_objective_preserved () =
  let lp = Lp.create () in
  let x = Lp.add_var lp Lp.Binary in
  let y = Lp.add_var lp Lp.Binary in
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 1.);
  ignore (Lp.add_constr lp [ (1., x); (1., y) ] Lp.Le 9.);
  Lp.set_objective lp ~maximize:true [ (3., x); (2., y) ];
  match P.presolve lp with
  | P.Reduced (out, _) ->
    (match Bb.solve out with
     | Bb.Optimal { obj; _ }, _ ->
       check_float "same optimum" 3. (Lp.obj_sign out *. obj)
     | o, _ -> Alcotest.failf "unexpected %a" Bb.pp_outcome o)
  | P.Infeasible m -> Alcotest.failf "unexpected infeasible: %s" m

(* property: presolve preserves the MILP optimum on random models *)
let make_rand_binary seed ~n ~m =
  let rng = Taskgraph.Prng.create seed in
  let lp = Lp.create () in
  let vars = Array.init n (fun _ -> Lp.add_var lp Lp.Binary) in
  for _ = 1 to m do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Taskgraph.Prng.bool rng 0.6 then
               Some (Float.of_int (Taskgraph.Prng.int_in rng (-3) 4), v)
             else None)
    in
    if terms <> [] then begin
      let rhs = Float.of_int (Taskgraph.Prng.int_in rng 0 6) in
      let sense = if Taskgraph.Prng.bool rng 0.8 then Lp.Le else Lp.Ge in
      ignore (Lp.add_constr lp terms sense rhs)
    end
  done;
  Lp.set_objective lp ~maximize:true
    (Array.to_list vars
    |> List.map (fun v -> (Float.of_int (Taskgraph.Prng.int_in rng (-5) 5), v)));
  lp

let prop_presolve_preserves_optimum =
  QCheck.Test.make ~name:"presolve preserves the MILP optimum" ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lp = make_rand_binary seed ~n:7 ~m:6 in
      let direct = Bb.solve lp in
      match P.presolve lp with
      | P.Infeasible _ -> (
        match direct with Bb.Infeasible, _ -> true | _ -> false)
      | P.Reduced (out, _) -> (
        let reduced = Bb.solve out in
        match (direct, reduced) with
        | (Bb.Optimal { obj = a; _ }, _), (Bb.Optimal { obj = b; _ }, _) ->
          Float.abs (a -. b) <= 1e-6
        | (Bb.Infeasible, _), (Bb.Infeasible, _) -> true
        | _ -> false))

(* Stronger than objective equality: the vector solved on the REDUCED
   model must be feasible for the ORIGINAL model variable by variable,
   and score the same there (optima need not be unique, so vectors are
   compared through the original model, not bitwise). The same shape is
   applied to propagation and cuts in test_propagate.ml / test_cuts.ml. *)
let prop_presolve_preserves_solutions =
  QCheck.Test.make
    ~name:"presolved solutions stay feasible and optimal per variable"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lp = make_rand_binary seed ~n:8 ~m:7 in
      match P.presolve lp with
      | P.Infeasible _ -> true (* covered by the feasible-points property *)
      | P.Reduced (out, _) -> (
        match (Bb.solve lp, Bb.solve out) with
        | (Bb.Optimal { obj = a; x = xa }, _), (Bb.Optimal { obj = b; x = xb }, _)
          ->
          Float.abs (a -. b) <= 1e-6
          && Array.length xa = Array.length xb
          && Ilp.Feas_check.is_feasible lp xb
          && Float.abs
               (Ilp.Feas_check.objective_value lp xa
               -. Ilp.Feas_check.objective_value lp xb)
             <= 1e-6
        | (Bb.Infeasible, _), (Bb.Infeasible, _) -> true
        | _ -> false))

let prop_presolve_never_cuts_feasible_points =
  QCheck.Test.make ~name:"presolve keeps every feasible binary point"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 6 in
      let lp = make_rand_binary seed ~n ~m:5 in
      match P.presolve lp with
      | P.Infeasible _ ->
        (* then no binary point may be feasible *)
        let any = ref false in
        for code = 0 to (1 lsl n) - 1 do
          let x = Array.init n (fun j -> Float.of_int ((code lsr j) land 1)) in
          if Ilp.Feas_check.is_feasible lp x then any := true
        done;
        not !any
      | P.Reduced (out, _) ->
        (* every point feasible for the original stays feasible *)
        let ok = ref true in
        for code = 0 to (1 lsl n) - 1 do
          let x = Array.init n (fun j -> Float.of_int ((code lsr j) land 1)) in
          if
            Ilp.Feas_check.is_feasible lp x
            && not (Ilp.Feas_check.is_feasible out x)
          then ok := false
        done;
        !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "presolve"
    [
      ( "unit",
        [
          Alcotest.test_case "redundant row" `Quick test_redundant_row_removed;
          Alcotest.test_case "infeasible" `Quick test_infeasible_detected;
          Alcotest.test_case "singleton" `Quick test_singleton_tightens;
          Alcotest.test_case "integer rounding" `Quick test_integer_rounding;
          Alcotest.test_case "fixing" `Quick test_fixing_by_propagation;
          Alcotest.test_case "objective preserved" `Quick
            test_objective_preserved;
        ] );
      ( "properties",
        [ qt prop_presolve_preserves_optimum;
          qt prop_presolve_preserves_solutions;
          qt prop_presolve_never_cuts_feasible_points ] );
    ]
