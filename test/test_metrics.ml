(* Tests for the metrics registry and its exporters: disabled-path
   semantics, the multi-domain shard merge (loss-free, monotone), the
   JSONL codec round-trip, the stream validator, the Prometheus text
   round-trip, and the acceptance pin that a final snapshot's totals
   equal the solver's own statistics exactly (sequential and jobs=2),
   plus gap reconstruction from the two --json timelines. *)

module M = Ilp.Metrics
module Export = Ilp.Metrics_export
module Json = Ilp.Json
module Bb = Ilp.Branch_bound

(* ---------------- registry semantics ---------------- *)

let test_disabled_costs_nothing () =
  Alcotest.(check bool) "disabled" false (M.enabled M.disabled);
  Alcotest.(check bool) "null inactive" false (M.active M.null_shard);
  Alcotest.(check bool)
    "main of disabled inactive" false
    (M.active (M.main M.disabled));
  (* writing through the null shard / disabled registry is a no-op *)
  M.incr M.null_shard M.C_nodes;
  M.observe M.null_shard M.H_lp_seconds 1.0;
  M.set_gauge M.disabled M.G_best_bound 42.;
  let s = M.snapshot M.disabled in
  Alcotest.(check int) "no counts" 0 (M.counter_value s M.C_nodes);
  Alcotest.(check bool)
    "gauge unset" true
    (Float.is_nan (M.gauge_value s M.G_best_bound))

let test_counters_and_hists () =
  let m = M.create () in
  let sh = M.main m in
  Alcotest.(check bool) "active" true (M.active sh);
  for _ = 1 to 10 do
    M.incr sh M.C_nodes
  done;
  M.add sh M.C_lp_pivots 32;
  M.observe sh M.H_lp_seconds 1e-5;
  M.observe sh M.H_lp_seconds 0.1;
  M.observe sh M.H_lp_seconds 1e9 (* overflow bucket *);
  M.set_gauge m M.G_best_bound 3.5;
  M.set_shared m M.C_trace_dropped_events 7;
  let s = M.snapshot m in
  Alcotest.(check int) "nodes" 10 (M.counter_value s M.C_nodes);
  Alcotest.(check int) "pivots" 32 (M.counter_value s M.C_lp_pivots);
  Alcotest.(check int) "shared" 7 (M.counter_value s M.C_trace_dropped_events);
  Alcotest.(check (float 1e-9)) "gauge" 3.5 (M.gauge_value s M.G_best_bound);
  let h = M.hist_value s M.H_lp_seconds in
  Alcotest.(check int) "hist count" 3 h.M.h_count;
  Alcotest.(check int)
    "count = bucket sum" h.M.h_count
    (Array.fold_left ( + ) 0 h.M.h_buckets);
  Alcotest.(check bool) "max kept" true (h.M.h_max >= 1e9);
  Alcotest.(check int)
    "overflow bucket" 1
    h.M.h_buckets.(M.n_buckets - 1)

(* QCheck property (the issue's merge contract): spawn several domains,
   each counting into its own shard; the snapshot taken after every
   domain joined must be the exact sum, and the histogram cells must be
   consistent (count = bucket sum). *)
let merge_property =
  QCheck.Test.make ~count:20 ~name:"multi-domain merge exact after join"
    QCheck.(pair (int_range 1 4) (int_range 1 1000))
    (fun (ndoms, nevents) ->
      let m = M.create () in
      let worker d () =
        let sh = M.make_shard m in
        for i = 0 to nevents - 1 do
          M.incr sh M.C_nodes;
          M.add sh M.C_lp_pivots 2;
          if i land 7 = 0 then
            M.observe sh M.H_lp_seconds (1e-6 *. Float.of_int ((d * i) + 1))
        done
      in
      let doms = Array.init ndoms (fun d -> Domain.spawn (worker d)) in
      Array.iter Domain.join doms;
      let s = M.snapshot m in
      if M.counter_value s M.C_nodes <> ndoms * nevents then
        QCheck.Test.fail_reportf "lost counts: %d <> %d"
          (M.counter_value s M.C_nodes)
          (ndoms * nevents);
      if M.counter_value s M.C_lp_pivots <> 2 * ndoms * nevents then
        QCheck.Test.fail_report "add not summed";
      let h = M.hist_value s M.H_lp_seconds in
      let expected_obs = ndoms * ((nevents + 7) / 8) in
      if h.M.h_count <> expected_obs then
        QCheck.Test.fail_reportf "hist count %d <> %d" h.M.h_count
          expected_obs;
      if h.M.h_count <> Array.fold_left ( + ) 0 h.M.h_buckets then
        QCheck.Test.fail_report "hist count <> bucket sum";
      true)

(* ---------------- JSONL codec ---------------- *)

(* A pseudo-random but deterministic snapshot generator driven by the
   QCheck seed: exercise every instrument family. *)
let snapshot_gen =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 1 1_000_000 in
      return
        (let m = M.create () in
         let sh = M.main m in
         let r = ref seed in
         let next bound =
           r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
           !r mod bound
         in
         Array.iter (fun c -> M.add sh c (next 1000)) M.all_counters;
         Array.iter
           (fun g ->
             if next 3 > 0 then
               M.set_gauge m g (Float.of_int (next 1000) /. 8.))
           M.all_gauges;
         Array.iter
           (fun h ->
             for _ = 1 to next 50 do
               M.observe sh h (Float.of_int (next 10_000_000) *. 1e-7)
             done)
           M.all_histograms;
         M.snapshot m))

let snapshots_equal (a : M.snapshot) (b : M.snapshot) =
  let feq x y = x = y || (Float.is_nan x && Float.is_nan y) in
  a.M.s_counters = b.M.s_counters
  && Array.for_all2 feq a.M.s_gauges b.M.s_gauges
  && Array.for_all2
       (fun (x : M.hist) (y : M.hist) ->
         x.M.h_count = y.M.h_count
         && feq x.M.h_sum y.M.h_sum && feq x.M.h_max y.M.h_max
         && x.M.h_buckets = y.M.h_buckets)
       a.M.s_hists b.M.s_hists

let jsonl_roundtrip_property =
  QCheck.Test.make ~count:50 ~name:"jsonl codec round-trips" snapshot_gen
    (fun snap ->
      match Export.snapshot_of_json (Export.snapshot_to_json snap) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok back ->
        if not (snapshots_equal snap back) then
          QCheck.Test.fail_report "snapshot did not round-trip";
        if Float.abs (back.M.s_ts -. snap.M.s_ts) > 1e-9 then
          QCheck.Test.fail_report "timestamp did not round-trip";
        true)

let test_validator () =
  let m = M.create () in
  let sh = M.main m in
  M.incr sh M.C_nodes;
  let s1 = M.snapshot m in
  M.add sh M.C_nodes 5;
  M.observe sh M.H_factor_seconds 1e-4;
  let s2 = M.snapshot m in
  (match Export.check [ s1; s2 ] with
   | Ok () -> ()
   | Error e -> Alcotest.failf "healthy stream rejected: %s" e);
  (match Export.check [] with
   | Ok () -> Alcotest.fail "empty stream accepted"
   | Error _ -> ());
  (* counters running backwards must be rejected *)
  (match Export.check [ s2; s1 ] with
   | Ok () -> Alcotest.fail "regressing counters accepted"
   | Error _ -> ());
  (* and monotonize repairs exactly that *)
  match Export.check [ s2; Export.monotonize s2 s1 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "monotonized stream rejected: %s" e

let test_jsonl_file_roundtrip () =
  let m = M.create () in
  let sh = M.main m in
  let path = Filename.temp_file "metrics" ".jsonl" in
  let oc = open_out path in
  let prev = ref M.empty_snapshot in
  for i = 1 to 3 do
    M.add sh M.C_nodes i;
    M.observe sh M.H_lp_seconds (Float.of_int i *. 1e-4);
    let s = Export.monotonize !prev (M.snapshot m) in
    prev := s;
    Export.write_jsonl oc s
  done;
  close_out oc;
  (match Export.load path with
   | Error e -> Alcotest.failf "load failed: %s" e
   | Ok snaps ->
     Alcotest.(check int) "three snapshots" 3 (List.length snaps);
     (match Export.check snaps with
      | Ok () -> ()
      | Error e -> Alcotest.failf "stream invalid: %s" e);
     let last = List.nth snaps 2 in
     Alcotest.(check int) "final nodes" 6 (M.counter_value last M.C_nodes));
  Sys.remove path

(* ---------------- Prometheus ---------------- *)

let test_prometheus_roundtrip () =
  let m = M.create () in
  let sh = M.main m in
  M.add sh M.C_nodes 17;
  M.add sh M.C_lp_pivots 123;
  M.observe sh M.H_factor_seconds 3e-5;
  M.observe sh M.H_factor_seconds 0.5;
  M.set_gauge m M.G_best_bound 2.25;
  let snap = M.snapshot m in
  let text = Export.prometheus snap in
  match Export.parse_prometheus text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok samples ->
    let value name =
      match
        List.find_opt (fun (n, labels, _) -> n = name && labels = []) samples
      with
      | Some (_, _, v) -> v
      | None -> Alcotest.failf "missing sample %s" name
    in
    Alcotest.(check (float 0.)) "counter" 17. (value "tpart_nodes_total");
    Alcotest.(check (float 0.)) "pivots" 123. (value "tpart_lp_pivots_total");
    Alcotest.(check (float 1e-12)) "gauge" 2.25 (value "tpart_best_bound");
    Alcotest.(check (float 0.)) "hist count" 2.
      (value "tpart_factor_seconds_count");
    Alcotest.(check (float 1e-9)) "hist sum" (3e-5 +. 0.5)
      (value "tpart_factor_seconds_sum");
    (* the +Inf bucket carries the total count *)
    let inf_bucket =
      List.find_opt
        (fun (n, labels, _) ->
          n = "tpart_factor_seconds_bucket"
          && List.mem_assoc "le" labels
          && List.assoc "le" labels = "+Inf")
        samples
    in
    (match inf_bucket with
     | Some (_, _, v) -> Alcotest.(check (float 0.)) "+Inf bucket" 2. v
     | None -> Alcotest.fail "no +Inf bucket");
    (* unset gauges are omitted *)
    Alcotest.(check bool)
      "unset gauge omitted" true
      (not
         (List.exists (fun (n, _, _) -> n = "tpart_pool_depth") samples))

(* ---------------- exactness against solver stats ---------------- *)

(* Same knapsack-flavoured sample model as test_trace.ml: a nontrivial
   tree in microseconds. *)
let sample_lp () =
  let lp = Ilp.Lp.create () in
  let n = 8 in
  let xs =
    Array.init n (fun i ->
        Ilp.Lp.add_var lp ~name:(Printf.sprintf "x%d" i) Ilp.Lp.Binary)
  in
  Ilp.Lp.set_objective lp ~maximize:true
    (Array.to_list
       (Array.mapi (fun i x -> (Float.of_int ((i mod 4) + 1), x)) xs));
  ignore
    (Ilp.Lp.add_constr lp ~name:"cap"
       (Array.to_list
          (Array.mapi (fun i x -> (Float.of_int ((i mod 3) + 1), x)) xs))
       Ilp.Lp.Le 6.);
  ignore
    (Ilp.Lp.add_constr lp ~name:"pick"
       [ (1., xs.(0)); (1., xs.(1)); (1., xs.(2)) ]
       Ilp.Lp.Le 1.);
  lp

let check_final_snapshot_exact ~jobs () =
  let m = M.create () in
  let options = { Bb.default_options with Bb.metrics = m; jobs } in
  let outcome, stats = Bb.solve ~options (sample_lp ()) in
  (match outcome with
   | Bb.Optimal _ -> ()
   | _ -> Alcotest.fail "sample solve not optimal");
  (* every writing domain has joined: the snapshot is exact *)
  let s = M.snapshot m in
  Alcotest.(check int) "nodes exact" stats.Bb.nodes
    (M.counter_value s M.C_nodes);
  Alcotest.(check int) "pivots exact" stats.Bb.pivots
    (M.counter_value s M.C_lp_pivots);
  Alcotest.(check int)
    "factorizations exact" stats.Bb.lp_stats.Ilp.Simplex.factorizations
    (M.counter_value s M.C_lu_factorizations);
  Alcotest.(check int)
    "flips exact" stats.Bb.lp_stats.Ilp.Simplex.bound_flips
    (M.counter_value s M.C_lp_bound_flips);
  Alcotest.(check int) "incumbents exact" stats.Bb.incumbents
    (M.counter_value s M.C_incumbents);
  let h = M.hist_value s M.H_factor_seconds in
  Alcotest.(check int)
    "factor hist counts factorizations"
    stats.Bb.lp_stats.Ilp.Simplex.factorizations h.M.h_count;
  (* the final gauges carry the converged bound/incumbent pair *)
  (match outcome with
   | Bb.Optimal { obj; _ } ->
     Alcotest.(check (float 1e-6)) "bound gauge" obj
       (M.gauge_value s M.G_best_bound);
     Alcotest.(check (float 1e-6)) "incumbent gauge" obj
       (M.gauge_value s M.G_incumbent_obj)
   | _ -> ());
  (stats, outcome)

let test_final_snapshot_sequential () =
  ignore (check_final_snapshot_exact ~jobs:1 ())

let test_final_snapshot_parallel () =
  ignore (check_final_snapshot_exact ~jobs:2 ())

(* ---------------- gap reconstruction ---------------- *)

let test_timelines_reconstruct_gap () =
  let m = M.create () in
  let options = { Bb.default_options with Bb.metrics = m } in
  let outcome, stats = Bb.solve ~options (sample_lp ()) in
  let obj =
    match outcome with
    | Bb.Optimal { obj; _ } -> obj
    | _ -> Alcotest.fail "sample solve not optimal"
  in
  Alcotest.(check bool)
    "bound timeline non-empty" true
    (Array.length stats.Bb.bound_timeline > 0);
  Alcotest.(check bool)
    "incumbent timeline non-empty" true
    (Array.length stats.Bb.timeline > 0);
  let _, final_bound =
    stats.Bb.bound_timeline.(Array.length stats.Bb.bound_timeline - 1)
  in
  let _, final_inc, _, _ =
    stats.Bb.timeline.(Array.length stats.Bb.timeline - 1)
  in
  (* last entries are authoritative: on Optimal both equal the optimum,
     so the reconstructed gap closes *)
  Alcotest.(check (float 1e-9)) "final bound is the optimum" obj final_bound;
  Alcotest.(check (float 1e-9)) "final incumbent is the optimum" obj
    final_inc;
  Array.iter
    (fun (t, b) ->
      Alcotest.(check bool) "timestamps non-negative" true (t >= 0.);
      Alcotest.(check bool) "bounds finite" true (Float.is_finite b);
      Alcotest.(check bool) "bounds never exceed the optimum" true
        (b <= obj +. 1e-9))
    stats.Bb.bound_timeline;
  (* strictly increasing bound sequence *)
  for i = 1 to Array.length stats.Bb.bound_timeline - 1 do
    let _, b0 = stats.Bb.bound_timeline.(i - 1)
    and _, b1 = stats.Bb.bound_timeline.(i) in
    Alcotest.(check bool) "bounds increase" true (b1 > b0)
  done

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "disabled costs nothing" `Quick
            test_disabled_costs_nothing;
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_counters_and_hists;
          QCheck_alcotest.to_alcotest merge_property;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest jsonl_roundtrip_property;
          Alcotest.test_case "stream validator" `Quick test_validator;
          Alcotest.test_case "jsonl file round-trip" `Quick
            test_jsonl_file_roundtrip;
          Alcotest.test_case "prometheus round-trip" `Quick
            test_prometheus_roundtrip;
        ] );
      ( "solver",
        [
          Alcotest.test_case "final snapshot equals stats (sequential)"
            `Quick test_final_snapshot_sequential;
          Alcotest.test_case "final snapshot equals stats (jobs=2)" `Quick
            test_final_snapshot_parallel;
          Alcotest.test_case "timelines reconstruct the gap" `Quick
            test_timelines_reconstruct_gap;
        ] );
    ]
