(* Tests for the structured tracing layer: ring-buffer semantics, the
   multi-domain merge (loss-free, per-writer monotone), the JSONL and
   Chrome trace_event sinks (parse back to the same records), the
   stream checker, the tree reconstruction, and the summary's exactness
   against the solver's own statistics. *)

module Trace = Ilp.Trace
module Export = Ilp.Trace_export
module Json = Ilp.Json
module Bb = Ilp.Branch_bound

(* ---------------- buffers and merge ---------------- *)

let test_disabled_costs_nothing () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.disabled);
  Alcotest.(check bool) "null inactive" false (Trace.active Trace.null_writer);
  Alcotest.(check bool)
    "main of disabled inactive" false
    (Trace.active (Trace.main Trace.disabled));
  (* emitting to the null writer is a no-op, not an error *)
  Trace.emit Trace.null_writer (Trace.Span_begin "x");
  Alcotest.(check int) "no records" 0
    (Array.length (Trace.collect Trace.disabled))

let test_emit_collect_order () =
  let t = Trace.create () in
  let w = Trace.main t in
  Alcotest.(check bool) "active" true (Trace.active w);
  for i = 0 to 99 do
    Trace.emit w (Trace.Incumbent { node = i; obj = Float.of_int i; source = Trace.Src_search })
  done;
  let r = Trace.collect t in
  Alcotest.(check int) "all collected" 100 (Array.length r);
  Array.iteri
    (fun i (rec_ : Trace.record) ->
      Alcotest.(check int) "dense seq" i rec_.Trace.seq;
      Alcotest.(check string) "writer name" "main" rec_.Trace.dname)
    r;
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t)

let test_ring_overwrites_oldest () =
  (* capacity rounds up to a power of two (16 is the floor) *)
  let t = Trace.create ~capacity:16 () in
  let w = Trace.main t in
  for i = 0 to 99 do
    Trace.emit w (Trace.Incumbent { node = i; obj = 0.; source = Trace.Src_search })
  done;
  let r = Trace.collect t in
  Alcotest.(check int) "capacity retained" 16 (Array.length r);
  Alcotest.(check int) "overwritten counted" 84 (Trace.dropped t);
  (* the survivors are the newest events, in order *)
  Array.iteri
    (fun i (rec_ : Trace.record) ->
      match rec_.Trace.ev with
      | Trace.Incumbent { node; _ } ->
        Alcotest.(check int) "newest retained" (84 + i) node
      | _ -> Alcotest.fail "unexpected event")
    r

(* QCheck property (the issue's merge contract): spawn several domains,
   each emitting its own event stream into its own writer; the merged
   collection must be loss-free (every emitted event present exactly
   once) and per-domain monotone in timestamp and sequence number. *)
let merge_property =
  QCheck.Test.make ~count:20 ~name:"multi-domain merge loss-free and monotone"
    QCheck.(pair (int_range 1 4) (int_range 1 300))
    (fun (ndoms, nevents) ->
      let t = Trace.create () in
      let worker d () =
        let w = Trace.make_writer t (Printf.sprintf "w%d" d) in
        for i = 0 to nevents - 1 do
          Trace.emit w (Trace.Incumbent { node = (d * 1_000_000) + i; obj = 0.; source = Trace.Src_search })
        done
      in
      let doms = Array.init ndoms (fun d -> Domain.spawn (worker d)) in
      Array.iter Domain.join doms;
      let r = Trace.collect t in
      (* loss-free: every (domain, i) payload appears exactly once *)
      let seen = Hashtbl.create 97 in
      Array.iter
        (fun (rec_ : Trace.record) ->
          match rec_.Trace.ev with
          | Trace.Incumbent { node; _ } ->
            if Hashtbl.mem seen node then
              QCheck.Test.fail_reportf "duplicate event %d" node;
            Hashtbl.add seen node ()
          | _ -> QCheck.Test.fail_report "unexpected event")
        r;
      if Array.length r <> ndoms * nevents then
        QCheck.Test.fail_reportf "lost events: %d <> %d" (Array.length r)
          (ndoms * nevents);
      (* per-domain monotone: ts non-decreasing, seq strictly increasing
         (collect sorts globally; project each domain's subsequence) *)
      let last_ts = Hashtbl.create 7 and last_seq = Hashtbl.create 7 in
      Array.iter
        (fun (rec_ : Trace.record) ->
          (match Hashtbl.find_opt last_ts rec_.Trace.dom with
           | Some ts when rec_.Trace.ts < ts ->
             QCheck.Test.fail_reportf "ts regressed on dom %d" rec_.Trace.dom
           | _ -> ());
          (match Hashtbl.find_opt last_seq rec_.Trace.dom with
           | Some sq when rec_.Trace.seq <> sq + 1 ->
             QCheck.Test.fail_reportf "seq not dense on dom %d" rec_.Trace.dom
           | _ -> ());
          Hashtbl.replace last_ts rec_.Trace.dom rec_.Trace.ts;
          Hashtbl.replace last_seq rec_.Trace.dom rec_.Trace.seq)
        r;
      (* and the checker agrees *)
      (match Export.check r with
       | [] -> ()
       | p :: _ -> QCheck.Test.fail_reportf "checker: %s" p);
      true)

(* ---------------- a real traced solve to round-trip ---------------- *)

(* A small knapsack-flavoured 0-1 model with a nontrivial tree. *)
let sample_records () =
  let lp = Ilp.Lp.create () in
  let n = 8 in
  let xs =
    Array.init n (fun i ->
        Ilp.Lp.add_var lp ~name:(Printf.sprintf "x%d" i) Ilp.Lp.Binary)
  in
  Ilp.Lp.set_objective lp ~maximize:true
    (Array.to_list
       (Array.mapi (fun i x -> (Float.of_int ((i mod 4) + 1), x)) xs));
  ignore
    (Ilp.Lp.add_constr lp ~name:"cap"
       (Array.to_list
          (Array.mapi (fun i x -> (Float.of_int ((i mod 3) + 1), x)) xs))
       Ilp.Lp.Le 6.);
  ignore
    (Ilp.Lp.add_constr lp ~name:"pick"
       [ (1., xs.(0)); (1., xs.(1)); (1., xs.(2)) ]
       Ilp.Lp.Le 1.);
  let tracer = Trace.create () in
  let options = { Bb.default_options with Bb.tracer } in
  let outcome, stats = Bb.solve ~options lp in
  (match outcome with
   | Bb.Optimal _ -> ()
   | _ -> Alcotest.fail "sample solve not optimal");
  (Trace.collect tracer, stats)

let test_solver_trace_consistent () =
  let records, stats = sample_records () in
  Alcotest.(check (list string)) "stream clean" [] (Export.check records);
  let s = Export.Summary.of_records records in
  Alcotest.(check int) "nodes match stats" stats.Bb.nodes
    s.Export.Summary.nodes_opened;
  Alcotest.(check int) "all closed" s.Export.Summary.nodes_opened
    s.Export.Summary.nodes_closed;
  Alcotest.(check int) "pivots match stats" stats.Bb.pivots
    s.Export.Summary.lp_pivots;
  Alcotest.(check int) "incumbent count" stats.Bb.incumbents
    (List.length s.Export.Summary.incumbents);
  Alcotest.(check int) "timeline in stats too" stats.Bb.incumbents
    (Array.length stats.Bb.timeline)

let test_tree_reconstruction () =
  let records, stats = sample_records () in
  let nodes = Export.Tree.of_records records in
  Alcotest.(check int) "every node in tree" stats.Bb.nodes
    (List.length nodes);
  List.iter
    (fun (nd : Export.Tree.node) ->
      if nd.Export.Tree.id <> 1 then begin
        Alcotest.(check bool)
          (Printf.sprintf "node %d has a known parent" nd.Export.Tree.id)
          true
          (List.exists
             (fun (p : Export.Tree.node) ->
               p.Export.Tree.id = nd.Export.Tree.parent)
             nodes)
      end
      else
        Alcotest.(check int) "root parent is -1" (-1) nd.Export.Tree.parent;
      Alcotest.(check bool)
        (Printf.sprintf "node %d closed" nd.Export.Tree.id)
        false
        (nd.Export.Tree.reason = ""))
    nodes;
  (* DOT output mentions every node *)
  let dot = Export.Tree.to_dot nodes in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (nd : Export.Tree.node) ->
      let label = Printf.sprintf "n%d " nd.Export.Tree.id in
      Alcotest.(check bool) label true (contains dot label))
    nodes

(* ---------------- sinks round-trip ---------------- *)

let with_temp_file f =
  let path = Filename.temp_file "trace_test" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_with sink_of records path =
  let oc = open_out path in
  Export.run (sink_of oc) records;
  close_out oc

let read_all path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_roundtrip records (loaded : Trace.record array) =
  Alcotest.(check int) "record count" (Array.length records)
    (Array.length loaded);
  Array.iteri
    (fun i (orig : Trace.record) ->
      let got = loaded.(i) in
      Alcotest.(check int) "dom" orig.Trace.dom got.Trace.dom;
      Alcotest.(check string) "writer" orig.Trace.dname got.Trace.dname;
      Alcotest.(check int) "seq" orig.Trace.seq got.Trace.seq;
      Alcotest.(check string)
        (Printf.sprintf "event %d" i)
        (Format.asprintf "%a" Trace.pp_event orig.Trace.ev)
        (Format.asprintf "%a" Trace.pp_event got.Trace.ev))
    records

let test_jsonl_roundtrip () =
  let records, _ = sample_records () in
  with_temp_file (fun path ->
      write_with Export.jsonl_sink records path;
      match Export.load path with
      | Error m -> Alcotest.fail m
      | Ok loaded -> check_roundtrip records loaded)

let test_chrome_roundtrip () =
  let records, _ = sample_records () in
  with_temp_file (fun path ->
      write_with Export.chrome_sink records path;
      match Export.load path with
      | Error m -> Alcotest.fail m
      | Ok loaded -> check_roundtrip records loaded)

(* The Lu_factor payload grew [m] and [probes] fields; round-trip them
   explicitly through both codecs (the solve-based round-trips above
   only compare pretty-printed events) and make sure the checker is
   happy with a factorization-only stream. *)
let test_lu_factor_roundtrip () =
  let t = Trace.create () in
  let w = Trace.main t in
  (* keep dt below the emit timestamp: the chrome codec stores the
     event start as [ts - dt] clamped at zero, so an oversized dt would
     push the reconstructed timestamps out of order *)
  Trace.emit w (Trace.Lu_factor { m = 37; fill = 245; probes = 112; dt = 3.25e-7 });
  Trace.emit w (Trace.Lu_factor { m = 1; fill = 1; probes = 0; dt = 0. });
  let records = Trace.collect t in
  List.iter
    (fun (name, sink) ->
      with_temp_file (fun path ->
          write_with sink records path;
          match Export.load path with
          | Error m -> Alcotest.fail (name ^ ": " ^ m)
          | Ok loaded ->
            Alcotest.(check (list string))
              (name ^ " stream clean") [] (Export.check loaded);
            check_roundtrip records loaded;
            (match loaded.(0).Trace.ev with
             | Trace.Lu_factor { m; fill; probes; dt } ->
               Alcotest.(check int) (name ^ " m") 37 m;
               Alcotest.(check int) (name ^ " fill") 245 fill;
               Alcotest.(check int) (name ^ " probes") 112 probes;
               Alcotest.(check bool)
                 (name ^ " dt") true
                 (Float.abs (dt -. 3.25e-7) < 1e-9)
             | _ -> Alcotest.fail (name ^ ": not an Lu_factor event"))))
    [ ("jsonl", Export.jsonl_sink); ("chrome", Export.chrome_sink) ]

let test_chrome_wellformed () =
  let records, _ = sample_records () in
  with_temp_file (fun path ->
      write_with Export.chrome_sink records path;
      match Json.parse (read_all path) with
      | Error m -> Alcotest.fail ("chrome sink emitted invalid JSON: " ^ m)
      | Ok json ->
        let events =
          match Json.member "traceEvents" json with
          | Some evs -> Json.to_list evs
          | None -> Alcotest.fail "no traceEvents member"
        in
        Alcotest.(check bool) "has events" true (List.length events > 0);
        let get name ev = Option.bind (Json.member name ev) Json.num in
        List.iter
          (fun ev ->
            let ph =
              match Option.bind (Json.member "ph" ev) Json.str with
              | Some ph -> ph
              | None -> Alcotest.fail "event without ph"
            in
            Alcotest.(check bool) "known phase" true
              (List.mem ph [ "B"; "E"; "X"; "i"; "M" ]);
            if ph <> "M" then begin
              Alcotest.(check bool) "has ts" true (get "ts" ev <> None);
              Alcotest.(check bool) "has tid" true (get "tid" ev <> None)
            end)
          events)

let test_summary_sink_matches_of_records () =
  let records, _ = sample_records () in
  let sink, result = Export.summary_sink () in
  Export.run sink records;
  let a = result () and b = Export.Summary.of_records records in
  Alcotest.(check string) "identical reports"
    (Json.to_string (Export.Summary.to_json b))
    (Json.to_string (Export.Summary.to_json a))

let test_checker_flags_violations () =
  let records, _ = sample_records () in
  (* duplicate a node open: the checker must object *)
  let bad =
    Array.append records
      [|
        {
          Trace.dom = 0;
          dname = "main";
          seq = 1_000_000;
          ts = 1e9;
          ev = Trace.Node_open { id = 1; parent = -1; depth = 0; bound = 0. };
        };
      |]
  in
  Alcotest.(check bool) "violation found" true (Export.check bad <> [])

(* ---------------- parallel solver trace ---------------- *)

let test_parallel_trace_tracks () =
  let lp = Ilp.Lp.create () in
  let n = 12 in
  let xs =
    Array.init n (fun i ->
        Ilp.Lp.add_var lp ~name:(Printf.sprintf "x%d" i) Ilp.Lp.Binary)
  in
  Ilp.Lp.set_objective lp ~maximize:true
    (Array.to_list
       (Array.mapi (fun i x -> (Float.of_int ((i mod 5) + 1), x)) xs));
  ignore
    (Ilp.Lp.add_constr lp ~name:"cap"
       (Array.to_list
          (Array.mapi (fun i x -> (Float.of_int ((i mod 4) + 1), x)) xs))
       Ilp.Lp.Le 9.);
  let tracer = Trace.create () in
  let options = { Bb.default_options with Bb.tracer; jobs = 2 } in
  let outcome, stats = Bb.solve ~options lp in
  (match outcome with
   | Bb.Optimal _ -> ()
   | _ -> Alcotest.fail "parallel sample not optimal");
  let records = Trace.collect tracer in
  Alcotest.(check (list string)) "stream clean" [] (Export.check records);
  let s = Export.Summary.of_records records in
  Alcotest.(check int) "nodes exact under domains" stats.Bb.nodes
    s.Export.Summary.nodes_opened;
  Alcotest.(check int) "pivots exact under domains" stats.Bb.pivots
    s.Export.Summary.lp_pivots

let () =
  Alcotest.run "trace"
    [
      ( "buffers",
        [
          Alcotest.test_case "disabled costs nothing" `Quick
            test_disabled_costs_nothing;
          Alcotest.test_case "emit/collect order" `Quick
            test_emit_collect_order;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          QCheck_alcotest.to_alcotest merge_property;
        ] );
      ( "solver",
        [
          Alcotest.test_case "summary matches stats" `Quick
            test_solver_trace_consistent;
          Alcotest.test_case "tree reconstruction" `Quick
            test_tree_reconstruction;
          Alcotest.test_case "parallel tracks exact" `Quick
            test_parallel_trace_tracks;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "lu_factor m/probes round-trip" `Quick
            test_lu_factor_roundtrip;
          Alcotest.test_case "chrome well-formed" `Quick
            test_chrome_wellformed;
          Alcotest.test_case "summary sink consistent" `Quick
            test_summary_sink_matches_of_records;
          Alcotest.test_case "checker flags violations" `Quick
            test_checker_flags_violations;
        ] );
    ]
